type token =
  | IDENT of string
  | NUM of float
  | HASH of int
  | KW of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | ASSIGN
  | ANDAND
  | OROR
  | BANG
  | EOF

type spanned = { tok : token; line : int; col : int }

exception Error of string

let keywords =
  [ "aggregate"; "parallel"; "void"; "main"; "let"; "if"; "else"; "while"; "for"; "dist" ]

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUM f -> Printf.sprintf "number %g" f
  | HASH k -> Printf.sprintf "#%d" k
  | KW s -> Printf.sprintf "keyword %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQEQ -> "'=='"
  | NE -> "'!='"
  | ASSIGN -> "'='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let fail i msg =
    raise (Error (Printf.sprintf "line %d, column %d: %s" !line (i - !bol + 1) msg))
  in
  let out = ref [] in
  let emit i tok = out := { tok; line = !line; col = i - !bol + 1 } :: !out in
  let rec go i =
    if i >= n then emit i EOF
    else
      match src.[i] with
      | '\n' ->
          incr line;
          bol := i + 1;
          go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec skip j = if j >= n || src.[j] = '\n' then j else skip (j + 1) in
          go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec skip j =
            if j + 1 >= n then fail i "unterminated block comment"
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else begin
              if src.[j] = '\n' then begin
                incr line;
                bol := j + 1
              end;
              skip (j + 1)
            end
          in
          go (skip (i + 2))
      | '#' ->
          if i + 1 < n && is_digit src.[i + 1] then begin
            let rec scan j = if j < n && is_digit src.[j] then scan (j + 1) else j in
            let j = scan (i + 1) in
            emit i (HASH (int_of_string (String.sub src (i + 1) (j - i - 1))));
            go j
          end
          else fail i "expected digit after '#'"
      | c when is_digit c ->
          let rec scan j seen_dot =
            if j < n && is_digit src.[j] then scan (j + 1) seen_dot
            else if j < n && src.[j] = '.' && (not seen_dot) && j + 1 < n && is_digit src.[j + 1]
            then scan (j + 1) true
            else j
          in
          let j = scan i false in
          emit i (NUM (float_of_string (String.sub src i (j - i))));
          go j
      | c when is_ident_start c ->
          let rec scan j = if j < n && is_ident src.[j] then scan (j + 1) else j in
          let j = scan i in
          let word = String.sub src i (j - i) in
          emit i (if List.mem word keywords then KW word else IDENT word);
          go j
      | '(' -> emit i LPAREN; go (i + 1)
      | ')' -> emit i RPAREN; go (i + 1)
      | '{' -> emit i LBRACE; go (i + 1)
      | '}' -> emit i RBRACE; go (i + 1)
      | '[' -> emit i LBRACKET; go (i + 1)
      | ']' -> emit i RBRACKET; go (i + 1)
      | ';' -> emit i SEMI; go (i + 1)
      | ',' -> emit i COMMA; go (i + 1)
      | '.' -> emit i DOT; go (i + 1)
      | '+' -> emit i PLUS; go (i + 1)
      | '-' -> emit i MINUS; go (i + 1)
      | '*' -> emit i STAR; go (i + 1)
      | '/' -> emit i SLASH; go (i + 1)
      | '%' -> emit i PERCENT; go (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit i LE; go (i + 2)
      | '<' -> emit i LT; go (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit i GE; go (i + 2)
      | '>' -> emit i GT; go (i + 1)
      | '=' when i + 1 < n && src.[i + 1] = '=' -> emit i EQEQ; go (i + 2)
      | '=' -> emit i ASSIGN; go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> emit i NE; go (i + 2)
      | '!' -> emit i BANG; go (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' -> emit i ANDAND; go (i + 2)
      | '|' when i + 1 < n && src.[i + 1] = '|' -> emit i OROR; go (i + 2)
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0;
  List.rev !out
