open Ast
module Runtime = Ccdsm_runtime.Runtime
module Aggregate = Ccdsm_runtime.Aggregate
module Distribution = Ccdsm_runtime.Distribution
module Coherence = Ccdsm_proto.Coherence

exception Runtime_error of string

(* Evaluation context threaded through compiled closures. *)
type ctx = {
  mutable node : int;
  mutable p0 : int;  (* #0 *)
  mutable p1 : int;  (* #1 *)
  locals : float array;
}

type env = {
  rt : Runtime.t;
  compiled : Compile.compiled;
  aggs : (string, Aggregate.t) Hashtbl.t;
  phases : (int, Runtime.phase) Hashtbl.t;  (* placement phase id -> runtime phase *)
  pfun_procs : (string, string * (ctx -> unit) * int) Hashtbl.t;
      (* name -> (parallel aggregate, compiled body, local slot count) *)
  main_proc : ctx -> unit;
  main_slots : int;
}

(* -- slot assignment ------------------------------------------------------ *)

type slots = { mutable names : string list }

let slot_of slots x =
  let rec find i = function
    | [] ->
        slots.names <- slots.names @ [ x ];
        i
    | y :: _ when y = x -> i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 slots.names

(* -- deterministic noise intrinsic ---------------------------------------- *)

let noise a b =
  let h = ref (Int64.of_float ((a *. 73856093.0) +. (b *. 19349663.0) +. 0.5)) in
  h := Int64.mul (Int64.logxor !h (Int64.shift_right_logical !h 30)) 0xBF58476D1CE4E5B9L;
  h := Int64.mul (Int64.logxor !h (Int64.shift_right_logical !h 27)) 0x94D049BB133111EBL;
  h := Int64.logxor !h (Int64.shift_right_logical !h 31);
  Int64.to_float (Int64.shift_right_logical !h 11) /. 9007199254740992.0

let truthy v = v <> 0.0
let of_bool b = if b then 1.0 else 0.0

(* -- expression compilation ------------------------------------------------ *)

let index_exn agg what v =
  let i = int_of_float v in
  if Float.is_nan v || Float.abs v >= 1e18 then
    raise (Runtime_error (Printf.sprintf "aggregate %s: non-finite %s index" agg what));
  i

let compile_program rt compiled =
  let sema = compiled.Compile.sema in
  let aggs : (string, Aggregate.t) Hashtbl.t = Hashtbl.create 16 in
  let machine = Runtime.machine rt in
  List.iter
    (fun (decl : agg_decl) ->
      let elem_words = max 1 (List.length decl.agg_fields) in
      let dist =
        match (decl.agg_dist, decl.agg_dims) with
        | Some Dblock, _ -> Distribution.Block1d
        | Some Dcyclic, _ -> Distribution.Cyclic
        | Some Drow_block, _ -> Distribution.Row_block
        | Some (Dtiled (pr, pc)), _ -> Distribution.Tiled { pr; pc }
        | None, [ _ ] -> Distribution.Block1d
        | None, _ -> Distribution.Row_block
      in
      let agg =
        try
          match decl.agg_dims with
          | [ n ] -> Aggregate.create_1d machine ~name:decl.agg_name ~elem_words ~n ~dist ()
          | [ rows; cols ] ->
              Aggregate.create_2d machine ~name:decl.agg_name ~elem_words ~rows ~cols ~dist ()
          | _ -> assert false
        with Invalid_argument msg -> raise (Runtime_error msg)
      in
      Hashtbl.replace aggs decl.agg_name agg)
    sema.Sema.prog.aggs;

  let field_of decl field =
    match Sema.field_index decl field with
    | Ok i -> i
    | Error msg -> raise (Runtime_error msg)
  in

  (* Compile one function body (or main) to a closure. *)
  let compile_body slots body =
    let rec cexpr = function
      | Num f -> fun _ -> f
      | Pos 0 -> fun ctx -> float_of_int ctx.p0
      | Pos _ -> fun ctx -> float_of_int ctx.p1
      | Var x ->
          let s = slot_of slots x in
          fun ctx -> ctx.locals.(s)
      | Agg_read a ->
          let agg = Hashtbl.find aggs a.acc_agg in
          let decl = sema.Sema.agg_of_name a.acc_agg in
          let field = field_of decl a.acc_field in
          (match a.acc_idx with
          | [ e ] ->
              let ce = cexpr e in
              fun ctx ->
                Aggregate.read1 agg ~node:ctx.node (index_exn a.acc_agg "1st" (ce ctx)) ~field
          | [ e1; e2 ] ->
              let c1 = cexpr e1 and c2 = cexpr e2 in
              fun ctx ->
                Aggregate.read2 agg ~node:ctx.node
                  (index_exn a.acc_agg "1st" (c1 ctx))
                  (index_exn a.acc_agg "2nd" (c2 ctx))
                  ~field
          | _ -> assert false)
      | Binop (And, l, r) ->
          let cl = cexpr l and cr = cexpr r in
          fun ctx -> if truthy (cl ctx) then of_bool (truthy (cr ctx)) else 0.0
      | Binop (Or, l, r) ->
          let cl = cexpr l and cr = cexpr r in
          fun ctx -> if truthy (cl ctx) then 1.0 else of_bool (truthy (cr ctx))
      | Binop (op, l, r) -> (
          let cl = cexpr l and cr = cexpr r in
          match op with
          | Add -> fun ctx -> cl ctx +. cr ctx
          | Sub -> fun ctx -> cl ctx -. cr ctx
          | Mul -> fun ctx -> cl ctx *. cr ctx
          | Div -> fun ctx -> cl ctx /. cr ctx
          | Mod -> fun ctx -> Float.rem (cl ctx) (cr ctx)
          | Lt -> fun ctx -> of_bool (cl ctx < cr ctx)
          | Le -> fun ctx -> of_bool (cl ctx <= cr ctx)
          | Gt -> fun ctx -> of_bool (cl ctx > cr ctx)
          | Ge -> fun ctx -> of_bool (cl ctx >= cr ctx)
          | Eq -> fun ctx -> of_bool (cl ctx = cr ctx)
          | Ne -> fun ctx -> of_bool (cl ctx <> cr ctx)
          | And | Or -> assert false)
      | Unop (Neg, e) ->
          let ce = cexpr e in
          fun ctx -> -.ce ctx
      | Unop (Not, e) ->
          let ce = cexpr e in
          fun ctx -> of_bool (not (truthy (ce ctx)))
      | Intrinsic (name, args) -> (
          let cargs = List.map cexpr args in
          match (name, cargs) with
          | "sqrt", [ a ] -> fun ctx -> sqrt (a ctx)
          | "abs", [ a ] -> fun ctx -> Float.abs (a ctx)
          | "floor", [ a ] -> fun ctx -> Float.floor (a ctx)
          | "min", [ a; b ] -> fun ctx -> Float.min (a ctx) (b ctx)
          | "max", [ a; b ] -> fun ctx -> Float.max (a ctx) (b ctx)
          | "noise", [ a; b ] -> fun ctx -> noise (a ctx) (b ctx)
          | _ -> raise (Runtime_error ("unknown intrinsic " ^ name)))
    in
    let rec cstmts l =
      let cs = List.map cstmt l in
      fun ctx -> List.iter (fun c -> c ctx) cs
    and cstmt = function
      | Slet (x, e) | Sassign (x, e) ->
          let s = slot_of slots x and ce = cexpr e in
          fun ctx -> ctx.locals.(s) <- ce ctx
      | Sstore (a, e) ->
          let agg = Hashtbl.find aggs a.acc_agg in
          let decl = sema.Sema.agg_of_name a.acc_agg in
          let field = field_of decl a.acc_field in
          let ce = cexpr e in
          (match a.acc_idx with
          | [ e1 ] ->
              let c1 = cexpr e1 in
              fun ctx ->
                Aggregate.write1 agg ~node:ctx.node
                  (index_exn a.acc_agg "1st" (c1 ctx))
                  ~field (ce ctx)
          | [ e1; e2 ] ->
              let c1 = cexpr e1 and c2 = cexpr e2 in
              fun ctx ->
                Aggregate.write2 agg ~node:ctx.node
                  (index_exn a.acc_agg "1st" (c1 ctx))
                  (index_exn a.acc_agg "2nd" (c2 ctx))
                  ~field (ce ctx)
          | _ -> assert false)
      | Sif (c, t, e) ->
          let cc = cexpr c and ct = cstmts t and ce = cstmts e in
          fun ctx -> if truthy (cc ctx) then ct ctx else ce ctx
      | Swhile (c, b) ->
          let cc = cexpr c and cb = cstmts b in
          fun ctx ->
            while truthy (cc ctx) do
              cb ctx
            done
      | Sfor (init, c, step, b) ->
          let ci = cstmt init and cc = cexpr c and cs = cstmt step and cb = cstmts b in
          fun ctx ->
            ci ctx;
            while truthy (cc ctx) do
              cb ctx;
              cs ctx
            done
      | Scall _ | Sphase _ ->
          (* handled by the main-level driver, not inside bodies *)
          assert false
    in
    cstmts body
  in

  (* Parallel functions. *)
  let pfun_procs = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let slots = { names = [] } in
      let proc = compile_body slots f.pf_body in
      Hashtbl.replace pfun_procs f.pf_name
        (sema.Sema.parallel_agg f.pf_name, proc, List.length slots.names))
    sema.Sema.prog.pfuns;
  (aggs, pfun_procs, compile_body)

let run_call env name =
  let pagg, proc, nslots = Hashtbl.find env.pfun_procs name in
  let agg = Hashtbl.find env.aggs pagg in
  let ctx = { node = 0; p0 = 0; p1 = 0; locals = Array.make (max 1 nslots) 0.0 } in
  match Array.length (Aggregate.dims agg) with
  | 1 ->
      Runtime.parallel_for_1d env.rt agg (fun ~node ~i ->
          ctx.node <- node;
          ctx.p0 <- i;
          proc ctx)
  | _ ->
      Runtime.parallel_for_2d env.rt agg (fun ~node ~i ~j ->
          ctx.node <- node;
          ctx.p0 <- i;
          ctx.p1 <- j;
          proc ctx)

let load rt compiled =
  let aggs, pfun_procs, compile_body = compile_program rt compiled in
  let placement = compiled.Compile.placement in
  let phases = Hashtbl.create 8 in
  for pid = 0 to placement.Placement.num_phases - 1 do
    Hashtbl.replace phases pid
      (Runtime.make_phase rt ~name:(Printf.sprintf "cstar-phase-%d" pid) ~scheduled:true)
  done;
  (* Compile main: scalar statements and control flow become closures; calls
     and phase regions become explicit driver actions. *)
  let slots = { names = [] } in
  let coh = Runtime.coherence rt in
  let rec cmain stmts =
    let parts = List.map cstmt stmts in
    fun env ctx -> List.iter (fun p -> p env ctx) parts
  and cstmt stmt =
    match stmt with
    | Slet _ | Sassign _ | Sstore _ ->
        let c = compile_body slots [ stmt ] in
        fun _env ctx -> c ctx
    | Sif (c, t, e) ->
        let cc = compile_body_expr c and ct = cmain t and ce = cmain e in
        fun env ctx -> if truthy (cc ctx) then ct env ctx else ce env ctx
    | Swhile (c, b) ->
        let cc = compile_body_expr c and cb = cmain b in
        fun env ctx ->
          while truthy (cc ctx) do
            cb env ctx
          done
    | Sfor (init, c, step, b) ->
        let ci = compile_body slots [ init ]
        and cc = compile_body_expr c
        and cs = compile_body slots [ step ]
        and cb = cmain b in
        fun env ctx ->
          ci ctx;
          while truthy (cc ctx) do
            cb env ctx;
            cs ctx
          done
    | Scall f -> fun env _ctx -> run_call env f
    | Sphase (pid, body) ->
        let cb = cmain body in
        fun env ctx ->
          let phase = Hashtbl.find env.phases pid in
          coh.Coherence.phase_begin ~phase:(Runtime.phase_id phase);
          cb env ctx;
          coh.Coherence.phase_end ~phase:(Runtime.phase_id phase)
  and compile_body_expr e =
    (* Reuse the body compiler for a bare expression via a synthetic local
       ("%cond" cannot clash with source identifiers). *)
    let tmp = "%cond" in
    let c = compile_body slots [ Slet (tmp, e) ] in
    let slot = slot_of slots tmp in
    fun ctx ->
      c ctx;
      ctx.locals.(slot)
  in
  let main_proc = cmain placement.Placement.placed_main in
  let env =
    {
      rt;
      compiled;
      aggs;
      phases;
      pfun_procs;
      main_proc = (fun _ -> ());
      main_slots = 0;
    }
  in
  let nslots = List.length slots.names in
  {
    env with
    main_proc =
      (fun ctx ->
        main_proc env ctx);
    main_slots = nslots;
  }

let aggregate env name =
  match Hashtbl.find_opt env.aggs name with
  | Some a -> a
  | None -> raise (Runtime_error ("unknown aggregate " ^ name))

let run env =
  let ctx = { node = 0; p0 = 0; p1 = 0; locals = Array.make (max 1 env.main_slots) 0.0 } in
  env.main_proc ctx

let run_pfun env name =
  if not (Hashtbl.mem env.pfun_procs name) then
    raise (Runtime_error ("unknown parallel function " ^ name));
  run_call env name
