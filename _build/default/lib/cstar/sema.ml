open Ast

type t = {
  prog : Ast.program;
  agg_of_name : string -> Ast.agg_decl;
  pfun_of_name : string -> Ast.pfun;
  parallel_agg : string -> string;
}

let field_index decl field =
  match (decl.agg_fields, field) with
  | [], None -> Ok 0
  | [], Some f -> Error (Printf.sprintf "aggregate %s has no named fields (found .%s)" decl.agg_name f)
  | _ :: _, None ->
      Error (Printf.sprintf "aggregate %s requires a field selector" decl.agg_name)
  | fields, Some f -> (
      let rec find i = function
        | [] -> Error (Printf.sprintf "aggregate %s has no field %s" decl.agg_name f)
        | g :: _ when g = f -> Ok i
        | _ :: rest -> find (i + 1) rest
      in
      find 0 fields)

module Smap = Map.Make (String)

let check prog =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in

  (* Aggregate declarations. *)
  let aggs = ref Smap.empty in
  List.iter
    (fun a ->
      if Smap.mem a.agg_name !aggs then err "duplicate aggregate %s" a.agg_name
      else aggs := Smap.add a.agg_name a !aggs;
      let rank = List.length a.agg_dims in
      List.iter (fun d -> if d <= 0 then err "aggregate %s: non-positive extent" a.agg_name) a.agg_dims;
      let rec dup = function
        | [] -> ()
        | f :: rest -> if List.mem f rest then err "aggregate %s: duplicate field %s" a.agg_name f else dup rest
      in
      dup a.agg_fields;
      match (a.agg_dist, rank) with
      | None, _ -> ()
      | Some (Dblock | Dcyclic), 1 | Some (Drow_block | Dtiled _), 2 -> ()
      | Some _, _ -> err "aggregate %s: distribution does not fit rank %d" a.agg_name rank)
    prog.aggs;
  let aggs = !aggs in

  (* Parallel function signatures. *)
  let pfuns = ref Smap.empty in
  List.iter
    (fun f ->
      if Smap.mem f.pf_name !pfuns then err "duplicate parallel function %s" f.pf_name
      else if List.mem_assoc f.pf_name intrinsics then
        err "parallel function %s shadows an intrinsic" f.pf_name
      else pfuns := Smap.add f.pf_name f !pfuns;
      (match List.filter (fun p -> p.par_parallel) f.pf_params with
      | [ _ ] -> ()
      | [] -> err "parallel function %s: no parallel parameter" f.pf_name
      | _ -> err "parallel function %s: multiple parallel parameters" f.pf_name);
      let rec dup = function
        | [] -> ()
        | p :: rest ->
            if List.exists (fun q -> q.par_name = p.par_name) rest then
              err "parallel function %s: duplicate parameter %s" f.pf_name p.par_name
            else dup rest
      in
      dup f.pf_params;
      List.iter
        (fun p ->
          if not (Smap.mem p.par_agg aggs) then
            err "parallel function %s: unknown aggregate %s" f.pf_name p.par_agg)
        f.pf_params)
    prog.pfuns;
  let pfuns = !pfuns in

  (* Resolve and check one parallel function body. *)
  let check_pfun f =
    let alias =
      List.fold_left (fun m p -> Smap.add p.par_name p.par_agg m) Smap.empty f.pf_params
    in
    let parallel_rank =
      match List.find_opt (fun p -> p.par_parallel) f.pf_params with
      | Some p -> (
          match Smap.find_opt p.par_agg aggs with
          | Some a -> List.length a.agg_dims
          | None -> 2 (* error already reported *))
      | None -> 2
    in
    let resolve_agg ctx name =
      match Smap.find_opt name alias with
      | Some agg -> Some agg
      | None ->
          if Smap.mem name aggs then Some name
          else begin
            err "%s: unknown aggregate or parameter %s" ctx name;
            None
          end
    in
    let rec rexpr ctx scope = function
      | Num f -> Num f
      | Pos k ->
          if k < 0 || k >= parallel_rank then
            err "%s: position #%d out of rank %d" ctx k parallel_rank;
          Pos k
      | Var v ->
          if Smap.mem v alias || Smap.mem v aggs then
            err "%s: aggregate %s used without index" ctx v
          else if not (Smap.mem v scope) then err "%s: unbound variable %s" ctx v;
          Var v
      | Agg_read a -> Agg_read (raccess ctx scope a)
      | Binop (op, l, r) -> Binop (op, rexpr ctx scope l, rexpr ctx scope r)
      | Unop (op, e) -> Unop (op, rexpr ctx scope e)
      | Intrinsic (name, args) ->
          (match List.assoc_opt name intrinsics with
          | None -> err "%s: unknown intrinsic %s" ctx name
          | Some arity ->
              if List.length args <> arity then
                err "%s: intrinsic %s expects %d argument(s)" ctx name arity);
          Intrinsic (name, List.map (rexpr ctx scope) args)
    and raccess ctx scope a =
      let agg_name =
        match resolve_agg ctx a.acc_agg with Some n -> n | None -> a.acc_agg
      in
      (match Smap.find_opt agg_name aggs with
      | None -> ()
      | Some decl ->
          if List.length a.acc_idx <> List.length decl.agg_dims then
            err "%s: aggregate %s indexed with %d subscript(s), rank is %d" ctx agg_name
              (List.length a.acc_idx) (List.length decl.agg_dims);
          (match field_index decl a.acc_field with Ok _ -> () | Error e -> err "%s: %s" ctx e));
      { acc_agg = agg_name; acc_idx = List.map (rexpr ctx scope) a.acc_idx; acc_field = a.acc_field }
    in
    let rec rstmts ctx scope = function
      | [] -> []
      | s :: rest ->
          let s', scope' = rstmt ctx scope s in
          s' :: rstmts ctx scope' rest
    and rstmt ctx scope = function
      | Slet (x, e) ->
          let e = rexpr ctx scope e in
          if Smap.mem x alias || Smap.mem x aggs then err "%s: let shadows aggregate %s" ctx x;
          (Slet (x, e), Smap.add x () scope)
      | Sassign (x, e) ->
          if not (Smap.mem x scope) then err "%s: assignment to unbound variable %s" ctx x;
          (Sassign (x, rexpr ctx scope e), scope)
      | Sstore (a, e) -> (Sstore (raccess ctx scope a, rexpr ctx scope e), scope)
      | Sif (c, t, e) ->
          (Sif (rexpr ctx scope c, rstmts ctx scope t, rstmts ctx scope e), scope)
      | Swhile (c, b) -> (Swhile (rexpr ctx scope c, rstmts ctx scope b), scope)
      | Sfor (init, c, step, b) ->
          let init', scope' = rstmt ctx scope init in
          let c = rexpr ctx scope' c in
          let step', _ = rstmt ctx scope' step in
          (Sfor (init', c, step', rstmts ctx scope' b), scope)
      | Scall name ->
          err "%s: nested parallel call to %s (parallel functions cannot call each other)" ctx
            name;
          (Scall name, scope)
      | Sphase _ -> err "%s: unexpected phase annotation in source" ctx;
          (Sphase (0, []), scope)
    in
    { f with pf_body = rstmts ("function " ^ f.pf_name) Smap.empty f.pf_body }
  in

  (* Check main: control flow and parallel calls only. *)
  let rec check_main scope = function
    | [] -> ()
    | s :: rest ->
        let scope' = check_main_stmt scope s in
        check_main scope' rest
  and check_main_expr scope = function
    | Num _ -> ()
    | Pos k -> err "main: position #%d outside a parallel function" k
    | Var v -> if not (Smap.mem v scope) then err "main: unbound variable %s" v
    | Agg_read a -> err "main: direct aggregate access to %s in sequential code" a.acc_agg
    | Binop (_, l, r) ->
        check_main_expr scope l;
        check_main_expr scope r
    | Unop (_, e) -> check_main_expr scope e
    | Intrinsic (name, args) ->
        (match List.assoc_opt name intrinsics with
        | None -> err "main: unknown intrinsic %s" name
        | Some arity ->
            if List.length args <> arity then err "main: intrinsic %s expects %d argument(s)" name arity);
        List.iter (check_main_expr scope) args
  and check_main_stmt scope = function
    | Slet (x, e) ->
        check_main_expr scope e;
        Smap.add x () scope
    | Sassign (x, e) ->
        if not (Smap.mem x scope) then err "main: assignment to unbound variable %s" x;
        check_main_expr scope e;
        scope
    | Sstore (a, _) ->
        err "main: direct aggregate store to %s in sequential code" a.acc_agg;
        scope
    | Sif (c, t, e) ->
        check_main_expr scope c;
        check_main scope t;
        check_main scope e;
        scope
    | Swhile (c, b) ->
        check_main_expr scope c;
        check_main scope b;
        scope
    | Sfor (init, c, step, b) ->
        (match init with
        | Slet _ | Sassign _ -> ()
        | _ -> err "main: for-loop initializer must be a scalar statement");
        (match step with
        | Slet _ | Sassign _ -> ()
        | _ -> err "main: for-loop step must be a scalar statement");
        let scope' = check_main_stmt scope init in
        check_main_expr scope' c;
        ignore (check_main_stmt scope' step);
        check_main scope' b;
        scope
    | Scall name ->
        if not (Smap.mem name pfuns) then err "main: call to unknown parallel function %s" name;
        scope
    | Sphase _ ->
        err "main: unexpected phase annotation in source";
        scope
  in
  check_main Smap.empty prog.main;

  let resolved_pfuns = List.map check_pfun prog.pfuns in
  match List.rev !errors with
  | [] ->
      let prog = { prog with pfuns = resolved_pfuns } in
      let agg_of_name n = List.find (fun a -> a.agg_name = n) prog.aggs in
      let pfun_of_name n = List.find (fun f -> f.pf_name = n) prog.pfuns in
      let parallel_agg n =
        let f = pfun_of_name n in
        (List.find (fun p -> p.par_parallel) f.pf_params).par_agg
      in
      Ok { prog; agg_of_name; pfun_of_name; parallel_agg }
  | errs -> Error errs
