open Ast

type reason = Not_needed | Has_unstructured | Reached_owner_write of string

type decision = {
  site : int;
  func : string;
  reason : reason;
  phase : int option;
  hoisted : bool;
}

type t = { placed_main : Ast.stmt list; decisions : decision list; num_phases : int }

(* Intermediate tree with explicit call sites (assigned in the same
   left-to-right order as Cfg.build, which Reaching's facts are keyed by). *)
type istmt =
  | IScalar of stmt
  | ICall of int * string
  | IIf of expr * istmt list * istmt list
  | IWhile of expr * istmt list
  | IFor of stmt * expr * stmt * istmt list

let index_main main =
  let site = ref 0 in
  let rec stmts l = List.map stmt l
  and stmt = function
    | (Slet _ | Sassign _ | Sstore _) as s -> IScalar s
    | Scall f ->
        let s = !site in
        incr site;
        ICall (s, f)
    | Sif (c, t, e) -> IIf (c, stmts t, stmts e)
    | Swhile (c, b) -> IWhile (c, stmts b)
    | Sfor (init, c, step, b) -> IFor (init, c, step, stmts b)
    | Sphase _ -> invalid_arg "Placement: source already contains phase regions"
  in
  stmts main

let rec calls_of istmts = List.concat_map calls_of_stmt istmts

and calls_of_stmt = function
  | IScalar _ -> []
  | ICall (s, f) -> [ (s, f) ]
  | IIf (_, t, e) -> calls_of t @ calls_of e
  | IWhile (_, b) -> calls_of b
  | IFor (_, _, _, b) -> calls_of b

let place sema =
  let summaries = Access.analyze_all sema in
  let main = sema.Sema.prog.Ast.main in
  let reaching = Reaching.analyze sema ~summaries main in
  let indexed = index_main main in

  (* Rule 1 and 2 per call site. *)
  let reason_for site func =
    let summary = List.assoc func summaries in
    if List.exists (fun e -> e.Access.loc = Access.Non_home) summary then Has_unstructured
    else
      let witness =
        List.find_opt
          (fun agg ->
            Access.has_owner_write summary agg && Reaching.reaches reaching ~site ~agg)
          (Access.aggregates summary)
      in
      match witness with Some agg -> Reached_owner_write agg | None -> Not_needed
  in
  let all_sites = calls_of indexed in
  let reasons = List.map (fun (s, f) -> (s, (f, reason_for s f))) all_sites in
  let needs site = snd (List.assoc site reasons) <> Not_needed in
  let home_only_call func = Access.home_only (List.assoc func summaries) in

  (* A statement is coalescible when every call under it touches only Home
     data (so a single region-level schedule covers it safely and the
     directive may move outside enclosing loops). *)
  let rec coalescible = function
    | IScalar _ -> true
    | ICall (_, f) -> home_only_call f
    | IIf (_, t, e) -> List.for_all coalescible t && List.for_all coalescible e
    | IWhile (_, b) -> List.for_all coalescible b
    | IFor (_, _, _, b) -> List.for_all coalescible b
  in
  let contains_needing s = List.exists (fun (site, _) -> needs site) (calls_of_stmt s) in

  let next_phase = ref 0 in
  let decisions = Hashtbl.create 16 in
  let decide site func phase hoisted =
    Hashtbl.replace decisions site
      { site; func; reason = snd (List.assoc site reasons); phase; hoisted }
  in

  (* Rebuild AST statements, recording per-call decisions.  [cover] is the
     phase id of an enclosing region (None outside any region); [in_loop]
     tracks whether we are under a loop nested inside that region. *)
  let rec rebuild cover ~in_loop l = List.map (rebuild_stmt cover ~in_loop) l
  and rebuild_stmt cover ~in_loop = function
    | IScalar s -> s
    | ICall (site, f) ->
        decide site f cover (cover <> None && in_loop);
        Scall f
    | IIf (c, t, e) -> Sif (c, rebuild cover ~in_loop t, rebuild cover ~in_loop e)
    | IWhile (c, b) -> Swhile (c, rebuild cover ~in_loop:(cover <> None) b)
    | IFor (init, c, step, b) -> Sfor (init, c, step, rebuild cover ~in_loop:(cover <> None) b)
  in

  (* Top-level structure pass: group maximal runs of coalescible neighbours,
     wrap runs (and solo unstructured calls) that need a schedule. *)
  let rec structure l =
    let flush_run acc run =
      match run with
      | [] -> acc
      | _ ->
          let run = List.rev run in
          if List.exists contains_needing run then begin
            let id = !next_phase in
            incr next_phase;
            Sphase (id, rebuild (Some id) ~in_loop:false run) :: acc
          end
          else List.rev_append (rebuild None ~in_loop:false run) acc
    in
    let rec go acc run = function
      | [] -> List.rev (flush_run acc run)
      | s :: rest ->
          if coalescible s then go acc (s :: run) rest
          else
            let acc = flush_run acc run in
            let acc = opaque s :: acc in
            go acc [] rest
    in
    go [] [] l
  (* A statement containing unstructured calls: wrap needing calls
     individually, recurse into control structure. *)
  and opaque = function
    | IScalar s -> s
    | ICall (site, f) ->
        if needs site then begin
          let id = !next_phase in
          incr next_phase;
          decide site f (Some id) false;
          Sphase (id, [ Scall f ])
        end
        else begin
          decide site f None false;
          Scall f
        end
    | IIf (c, t, e) -> Sif (c, structure t, structure e)
    | IWhile (c, b) -> Swhile (c, structure b)
    | IFor (init, c, step, b) -> Sfor (init, c, step, structure b)
  in
  let placed_main = structure indexed in
  let decisions =
    List.map (fun (site, _) -> Hashtbl.find decisions site) all_sites
    |> List.sort (fun a b -> compare a.site b.site)
  in
  { placed_main; decisions; num_phases = !next_phase }

let pp ppf t =
  Format.fprintf ppf "@[<v>%d phase(s) placed@ " t.num_phases;
  List.iter
    (fun d ->
      let reason =
        match d.reason with
        | Not_needed -> "no directive"
        | Has_unstructured -> "unstructured accesses"
        | Reached_owner_write agg -> Printf.sprintf "reached + owner writes %s" agg
      in
      Format.fprintf ppf "site %d (%s): %s%s%s@ " d.site d.func reason
        (match d.phase with Some p -> Printf.sprintf " -> phase %d" p | None -> "")
        (if d.hoisted then " (hoisted out of loop)" else ""))
    t.decisions;
  Format.fprintf ppf "@]"
