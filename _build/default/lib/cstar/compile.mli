(** Compiler pipeline driver: source text to placed program. *)

type compiled = {
  source : string;
  sema : Sema.t;
  summaries : (string * Access.summary) list;
  placement : Placement.t;
}

val compile : string -> (compiled, string list) result
(** Lex, parse, check, analyze and place.  Syntax errors and semantic errors
    are returned as messages. *)

val compile_exn : string -> compiled
(** @raise Failure with the joined error messages. *)

val pp_report : Format.formatter -> compiled -> unit
(** Full compiler report: access summaries, reaching facts, placement, and
    the placed main (what [cstarc --dump-all] prints). *)
