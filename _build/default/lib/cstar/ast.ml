type dist = Dblock | Dcyclic | Drow_block | Dtiled of int * int

type agg_decl = {
  agg_name : string;
  agg_dims : int list;
  agg_fields : string list;
  agg_dist : dist option;
}

type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne | And | Or
type unop = Neg | Not

type agg_access = { acc_agg : string; acc_idx : expr list; acc_field : string option }

and expr =
  | Num of float
  | Pos of int
  | Var of string
  | Agg_read of agg_access
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Intrinsic of string * expr list

type stmt =
  | Slet of string * expr
  | Sassign of string * expr
  | Sstore of agg_access * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt * expr * stmt * stmt list
  | Scall of string
  | Sphase of int * stmt list

type pfun = { pf_name : string; pf_params : param list; pf_body : stmt list }
and param = { par_parallel : bool; par_agg : string; par_name : string }

type program = { aggs : agg_decl list; pfuns : pfun list; main : stmt list }

let intrinsics =
  [ ("sqrt", 1); ("abs", 1); ("floor", 1); ("min", 2); ("max", 2); ("noise", 2) ]

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr ppf = function
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Format.fprintf ppf "%d" (int_of_float f)
      else Format.fprintf ppf "%g" f
  | Pos k -> Format.fprintf ppf "#%d" k
  | Var v -> Format.pp_print_string ppf v
  | Agg_read a -> pp_access ppf a
  | Binop (op, l, r) -> Format.fprintf ppf "(%a %s %a)" pp_expr l (binop_name op) pp_expr r
  | Unop (Neg, e) -> Format.fprintf ppf "(-%a)" pp_expr e
  | Unop (Not, e) -> Format.fprintf ppf "(!%a)" pp_expr e
  | Intrinsic (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_expr)
        args

and pp_access ppf a =
  Format.fprintf ppf "%s%a%s" a.acc_agg
    (fun ppf -> List.iter (Format.fprintf ppf "[%a]" pp_expr))
    a.acc_idx
    (match a.acc_field with None -> "" | Some f -> "." ^ f)

let rec pp_stmt ppf = function
  | Slet (x, e) -> Format.fprintf ppf "let %s = %a;" x pp_expr e
  | Sassign (x, e) -> Format.fprintf ppf "%s = %a;" x pp_expr e
  | Sstore (a, e) -> Format.fprintf ppf "%a = %a;" pp_access a pp_expr e
  | Sif (c, t, []) -> Format.fprintf ppf "@[<v 2>if (%a) {%a@]@ }" pp_expr c pp_body t
  | Sif (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if (%a) {%a@]@ @[<v 2>} else {%a@]@ }" pp_expr c pp_body t
        pp_body e
  | Swhile (c, b) -> Format.fprintf ppf "@[<v 2>while (%a) {%a@]@ }" pp_expr c pp_body b
  | Sfor (init, c, step, b) ->
      Format.fprintf ppf "@[<v 2>for (%a %a; %a) {%a@]@ }" pp_stmt init pp_expr c pp_for_step
        step pp_body b
  | Scall f -> Format.fprintf ppf "%s();" f
  | Sphase (id, b) -> Format.fprintf ppf "@[<v 2>phase %d {%a@]@ }" id pp_body b

and pp_for_step ppf = function
  | Sassign (x, e) -> Format.fprintf ppf "%s = %a" x pp_expr e
  | s -> pp_stmt ppf s

and pp_body ppf stmts = List.iter (fun s -> Format.fprintf ppf "@ %a" pp_stmt s) stmts

let pp_stmts ppf stmts =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i s ->
      if i > 0 then Format.fprintf ppf "@ ";
      pp_stmt ppf s)
    stmts;
  Format.fprintf ppf "@]"

let pp_dist ppf = function
  | Dblock -> Format.pp_print_string ppf "block"
  | Dcyclic -> Format.pp_print_string ppf "cyclic"
  | Drow_block -> Format.pp_print_string ppf "rowblock"
  | Dtiled (r, c) -> Format.fprintf ppf "tiled(%d,%d)" r c

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun a ->
      Format.fprintf ppf "aggregate %s%s" a.agg_name
        (String.concat "" (List.map (Printf.sprintf "[%d]") a.agg_dims));
      (match a.agg_fields with
      | [] -> ()
      | fs -> Format.fprintf ppf " { %s }" (String.concat ", " fs));
      (match a.agg_dist with None -> () | Some d -> Format.fprintf ppf " dist %a" pp_dist d);
      Format.fprintf ppf ";@ ")
    p.aggs;
  List.iter
    (fun f ->
      let param ppf pr =
        Format.fprintf ppf "%s%s %s"
          (if pr.par_parallel then "parallel " else "")
          pr.par_agg pr.par_name
      in
      Format.fprintf ppf "@[<v 2>parallel void %s(%a) {%a@]@ }@ " f.pf_name
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") param)
        f.pf_params pp_body f.pf_body)
    p.pfuns;
  Format.fprintf ppf "@[<v 2>void main() {%a@]@ }@]" pp_body p.main
