lib/cstar/interp.mli: Ccdsm_runtime Compile
