lib/cstar/access.ml: Ast Format List Sema
