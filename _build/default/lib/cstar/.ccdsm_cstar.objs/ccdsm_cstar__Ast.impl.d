lib/cstar/ast.ml: Float Format List Printf String
