lib/cstar/interp.ml: Array Ast Ccdsm_proto Ccdsm_runtime Compile Float Hashtbl Int64 List Placement Printf Sema
