lib/cstar/cfg.mli: Ast Format
