lib/cstar/lexer.ml: List Printf String
