lib/cstar/cfg.ml: Array Ast Format List Printf String
