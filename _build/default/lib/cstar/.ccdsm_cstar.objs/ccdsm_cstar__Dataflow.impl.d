lib/cstar/dataflow.ml: Array Bitvec Ccdsm_util Cfg List Queue
