lib/cstar/placement.mli: Ast Format Sema
