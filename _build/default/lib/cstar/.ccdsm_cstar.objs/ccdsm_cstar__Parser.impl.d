lib/cstar/parser.ml: Array Ast Float Lexer List Printf
