lib/cstar/reaching.ml: Access Array Ast Bitvec Ccdsm_util Cfg Dataflow Format List Sema String
