lib/cstar/compile.ml: Access Ast Format List Parser Placement Reaching Sema String
