lib/cstar/compile.mli: Access Format Placement Sema
