lib/cstar/access.mli: Ast Format Sema
