lib/cstar/sema.mli: Ast
