lib/cstar/lexer.mli:
