lib/cstar/ast.mli: Format
