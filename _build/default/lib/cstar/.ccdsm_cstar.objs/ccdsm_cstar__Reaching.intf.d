lib/cstar/reaching.mli: Access Ast Bitvec Ccdsm_util Cfg Dataflow Format Sema
