lib/cstar/parser.mli: Ast
