lib/cstar/sema.ml: Ast Format List Map Printf String
