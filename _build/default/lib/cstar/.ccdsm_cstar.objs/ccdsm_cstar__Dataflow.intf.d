lib/cstar/dataflow.mli: Bitvec Ccdsm_util Cfg
