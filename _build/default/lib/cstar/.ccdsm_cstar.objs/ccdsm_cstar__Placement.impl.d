lib/cstar/placement.ml: Access Ast Format Hashtbl List Printf Reaching Sema
