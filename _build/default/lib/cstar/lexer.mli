(** Hand-written lexer for the C\*\*-like language. *)

type token =
  | IDENT of string
  | NUM of float
  | HASH of int  (** position pseudo-variable [#k] *)
  | KW of string  (** keyword: aggregate parallel void main let if else while for dist *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | ASSIGN
  | ANDAND
  | OROR
  | BANG
  | EOF

type spanned = { tok : token; line : int; col : int }

exception Error of string
(** Raised on malformed input, with a message naming line and column. *)

val tokenize : string -> spanned list
(** Lex a whole source string.  The result always ends with [EOF].
    Line ([//]) and block comments are skipped. *)

val describe : token -> string
(** Human-readable token name for diagnostics. *)
