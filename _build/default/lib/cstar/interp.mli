(** Execution of compiled C\*\* programs on the DSM runtime.

    Programs are pre-compiled to closures (local variables become array
    slots, field names become offsets) so that the per-element interpretive
    overhead stays small.  A parallel call runs one invocation per element of
    the parallel aggregate on the element's owning node; every aggregate
    access goes through {!Ccdsm_runtime.Aggregate}, i.e. through the machine's
    tag check and whatever coherence protocol the runtime was created with.
    Phase regions placed by the compiler invoke the protocol's
    [phase_begin]/[phase_end] hooks around their body. *)

exception Runtime_error of string

type env

val load : Ccdsm_runtime.Runtime.t -> Compile.compiled -> env
(** Create the program's aggregates (homed per their distributions) and one
    runtime phase per placed directive.
    @raise Runtime_error if an aggregate's distribution does not fit the
    machine (e.g. a tiled grid not matching the node count). *)

val aggregate : env -> string -> Ccdsm_runtime.Aggregate.t
(** Look up a program aggregate, for initialization and inspection by the
    host. *)

val run : env -> unit
(** Execute [main].
    @raise Runtime_error on out-of-bounds aggregate indices. *)

val run_pfun : env -> string -> unit
(** Execute a single parallel function outside any phase (host-driven
    initialization). *)
