open Ccdsm_util

type t = {
  cfg : Cfg.t;
  agg_index : (string * int) list;
  result : Dataflow.result;
  site_in : Bitvec.t array;
}

let analyze sema ?summaries main =
  let summaries = match summaries with Some s -> s | None -> Access.analyze_all sema in
  let aggs = List.map (fun a -> a.Ast.agg_name) sema.Sema.prog.Ast.aggs in
  let agg_index = List.mapi (fun i a -> (a, i)) aggs in
  let width = List.length aggs in
  let cfg = Cfg.build main in
  let idx a = List.assoc a agg_index in
  let gen node =
    let v = Bitvec.create width in
    (match cfg.Cfg.kinds.(node) with
    | Cfg.Call { func; _ } ->
        let summary = List.assoc func summaries in
        List.iter
          (fun e -> if e.Access.loc = Access.Non_home then Bitvec.set v (idx e.Access.agg))
          summary
    | _ -> ());
    v
  in
  let kill node =
    let v = Bitvec.create width in
    (match cfg.Cfg.kinds.(node) with
    | Cfg.Call { func; _ } ->
        let summary = List.assoc func summaries in
        List.iter
          (fun e -> if e.Access.dir = Access.Write then Bitvec.set v (idx e.Access.agg))
          summary
    | _ -> ());
    v
  in
  let result = Dataflow.solve_forward ~cfg ~width ~gen ~kill in
  let nsites = List.length (Cfg.call_sites cfg) in
  let site_in = Array.init nsites (fun _ -> Bitvec.create width) in
  Array.iteri
    (fun node kind ->
      match kind with
      | Cfg.Call { site; _ } -> site_in.(site) <- result.Dataflow.in_facts.(node)
      | _ -> ())
    cfg.Cfg.kinds;
  { cfg; agg_index; result; site_in }

let reaches t ~site ~agg =
  match List.assoc_opt agg t.agg_index with
  | None -> invalid_arg ("Reaching.reaches: unknown aggregate " ^ agg)
  | Some i -> Bitvec.get t.site_in.(site) i

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (site, func) ->
      let set =
        List.filter_map
          (fun (a, i) -> if Bitvec.get t.site_in.(site) i then Some a else None)
          t.agg_index
      in
      Format.fprintf ppf "site %d (%s): reaching unstructured = {%s}@ " site func
        (String.concat ", " set))
    (Cfg.call_sites t.cfg);
  Format.fprintf ppf "@]"
