(** Control-flow graph of the sequential [main] function (paper section 4.3).

    Parallel calls are the only nodes with interesting transfer functions;
    scalar statements become no-ops and structured control flow (if / while /
    for) contributes branch and join nodes with the corresponding edges,
    including loop back edges.  Each call node carries a {e call-site id}
    assigned in left-to-right AST traversal order, which {!Placement} uses to
    look up the data-flow fact at that site. *)

type kind =
  | Entry
  | Exit
  | Nop  (** scalar statement *)
  | Branch  (** condition of if / while / for *)
  | Join
  | Call of { func : string; site : int }

type t = {
  kinds : kind array;  (** node id -> kind *)
  succs : int list array;
  preds : int list array;
  entry : int;
  exit : int;
}

val build : Ast.stmt list -> t
(** Build the CFG of a main body.  [Sphase] regions are transparent (their
    contents are linked inline). *)

val num_nodes : t -> int
val call_sites : t -> (int * string) list
(** [(site, function)] pairs in site order. *)

val pp : Format.formatter -> t -> unit
(** Render nodes and edges, for [cstarc --dump-cfg]. *)
