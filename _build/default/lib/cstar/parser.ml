open Ast

exception Error of string

type state = { toks : Lexer.spanned array; mutable pos : int }

let peek st = st.toks.(st.pos).Lexer.tok

let fail st msg =
  let s = st.toks.(st.pos) in
  raise
    (Error
       (Printf.sprintf "line %d, column %d: %s (found %s)" s.Lexer.line s.Lexer.col msg
          (Lexer.describe s.Lexer.tok)))

let advance st = st.pos <- st.pos + 1

let eat st tok =
  if peek st = tok then advance st else fail st (Printf.sprintf "expected %s" (Lexer.describe tok))

let eat_ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let eat_int st =
  match peek st with
  | Lexer.NUM f when Float.is_integer f && f >= 0.0 ->
      advance st;
      int_of_float f
  | _ -> fail st "expected integer literal"

(* -- expressions ---------------------------------------------------------- *)

let rec parse_or st =
  let l = ref (parse_and st) in
  while peek st = Lexer.OROR do
    advance st;
    l := Binop (Or, !l, parse_and st)
  done;
  !l

and parse_and st =
  let l = ref (parse_cmp st) in
  while peek st = Lexer.ANDAND do
    advance st;
    l := Binop (And, !l, parse_cmp st)
  done;
  !l

and parse_cmp st =
  let l = parse_add st in
  let op =
    match peek st with
    | Lexer.LT -> Some Lt
    | Lexer.LE -> Some Le
    | Lexer.GT -> Some Gt
    | Lexer.GE -> Some Ge
    | Lexer.EQEQ -> Some Eq
    | Lexer.NE -> Some Ne
    | _ -> None
  in
  match op with
  | None -> l
  | Some op ->
      advance st;
      Binop (op, l, parse_add st)

and parse_add st =
  let l = ref (parse_mul st) in
  let rec go () =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        l := Binop (Add, !l, parse_mul st);
        go ()
    | Lexer.MINUS ->
        advance st;
        l := Binop (Sub, !l, parse_mul st);
        go ()
    | _ -> ()
  in
  go ();
  !l

and parse_mul st =
  let l = ref (parse_unary st) in
  let rec go () =
    match peek st with
    | Lexer.STAR ->
        advance st;
        l := Binop (Mul, !l, parse_unary st);
        go ()
    | Lexer.SLASH ->
        advance st;
        l := Binop (Div, !l, parse_unary st);
        go ()
    | Lexer.PERCENT ->
        advance st;
        l := Binop (Mod, !l, parse_unary st);
        go ()
    | _ -> ()
  in
  go ();
  !l

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      Unop (Neg, parse_unary st)
  | Lexer.BANG ->
      advance st;
      Unop (Not, parse_unary st)
  | _ -> parse_primary st

and parse_indices st =
  let idx = ref [] in
  while peek st = Lexer.LBRACKET do
    advance st;
    idx := parse_or st :: !idx;
    eat st Lexer.RBRACKET
  done;
  List.rev !idx

and parse_primary st =
  match peek st with
  | Lexer.NUM f ->
      advance st;
      Num f
  | Lexer.HASH k ->
      advance st;
      Pos k
  | Lexer.LPAREN ->
      advance st;
      let e = parse_or st in
      eat st Lexer.RPAREN;
      e
  | Lexer.IDENT name -> (
      advance st;
      match peek st with
      | Lexer.LPAREN ->
          advance st;
          let args = ref [] in
          if peek st <> Lexer.RPAREN then begin
            args := [ parse_or st ];
            while peek st = Lexer.COMMA do
              advance st;
              args := parse_or st :: !args
            done
          end;
          eat st Lexer.RPAREN;
          Intrinsic (name, List.rev !args)
      | Lexer.LBRACKET ->
          let idx = parse_indices st in
          let field =
            if peek st = Lexer.DOT then begin
              advance st;
              Some (eat_ident st)
            end
            else None
          in
          Agg_read { acc_agg = name; acc_idx = idx; acc_field = field }
      | _ -> Var name)
  | _ -> fail st "expected expression"

(* -- statements ----------------------------------------------------------- *)

(* A "simple" statement: assignment, aggregate store or parallel call
   (no trailing ';'). *)
let parse_simple st =
  match peek st with
  | Lexer.KW "let" ->
      advance st;
      let x = eat_ident st in
      eat st Lexer.ASSIGN;
      Slet (x, parse_or st)
  | Lexer.IDENT name -> (
      advance st;
      match peek st with
      | Lexer.LPAREN ->
          advance st;
          eat st Lexer.RPAREN;
          Scall name
      | Lexer.ASSIGN ->
          advance st;
          Sassign (name, parse_or st)
      | Lexer.LBRACKET ->
          let idx = parse_indices st in
          let field =
            if peek st = Lexer.DOT then begin
              advance st;
              Some (eat_ident st)
            end
            else None
          in
          eat st Lexer.ASSIGN;
          Sstore ({ acc_agg = name; acc_idx = idx; acc_field = field }, parse_or st)
      | _ -> fail st "expected '(', '=' or '[' after identifier")
  | _ -> fail st "expected statement"

let rec parse_stmt st =
  match peek st with
  | Lexer.KW "if" ->
      advance st;
      eat st Lexer.LPAREN;
      let c = parse_or st in
      eat st Lexer.RPAREN;
      let t = parse_block st in
      let e =
        if peek st = Lexer.KW "else" then begin
          advance st;
          if peek st = Lexer.KW "if" then [ parse_stmt st ] else parse_block st
        end
        else []
      in
      Sif (c, t, e)
  | Lexer.KW "while" ->
      advance st;
      eat st Lexer.LPAREN;
      let c = parse_or st in
      eat st Lexer.RPAREN;
      Swhile (c, parse_block st)
  | Lexer.KW "for" ->
      advance st;
      eat st Lexer.LPAREN;
      let init = parse_simple st in
      eat st Lexer.SEMI;
      let cond = parse_or st in
      eat st Lexer.SEMI;
      let step = parse_simple st in
      eat st Lexer.RPAREN;
      Sfor (init, cond, step, parse_block st)
  | _ ->
      let s = parse_simple st in
      eat st Lexer.SEMI;
      s

and parse_block st =
  eat st Lexer.LBRACE;
  let stmts = ref [] in
  while peek st <> Lexer.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  advance st;
  List.rev !stmts

(* -- declarations --------------------------------------------------------- *)

let parse_aggdecl st =
  eat st (Lexer.KW "aggregate");
  let name = eat_ident st in
  let dims = ref [] in
  while peek st = Lexer.LBRACKET do
    advance st;
    dims := eat_int st :: !dims;
    eat st Lexer.RBRACKET
  done;
  let dims = List.rev !dims in
  if List.length dims < 1 || List.length dims > 2 then fail st "aggregates are 1-D or 2-D";
  let fields =
    if peek st = Lexer.LBRACE then begin
      advance st;
      let fs = ref [ eat_ident st ] in
      while peek st = Lexer.COMMA do
        advance st;
        fs := eat_ident st :: !fs
      done;
      eat st Lexer.RBRACE;
      List.rev !fs
    end
    else []
  in
  let dist =
    if peek st = Lexer.KW "dist" then begin
      advance st;
      match eat_ident st with
      | "block" -> Some Dblock
      | "cyclic" -> Some Dcyclic
      | "rowblock" -> Some Drow_block
      | "tiled" ->
          eat st Lexer.LPAREN;
          let r = eat_int st in
          eat st Lexer.COMMA;
          let c = eat_int st in
          eat st Lexer.RPAREN;
          Some (Dtiled (r, c))
      | other -> fail st (Printf.sprintf "unknown distribution %S" other)
    end
    else None
  in
  eat st Lexer.SEMI;
  { agg_name = name; agg_dims = dims; agg_fields = fields; agg_dist = dist }

let parse_params st =
  eat st Lexer.LPAREN;
  let params = ref [] in
  if peek st <> Lexer.RPAREN then begin
    let parse_param () =
      let par_parallel =
        if peek st = Lexer.KW "parallel" then begin
          advance st;
          true
        end
        else false
      in
      let par_agg = eat_ident st in
      let par_name = eat_ident st in
      { par_parallel; par_agg; par_name }
    in
    params := [ parse_param () ];
    while peek st = Lexer.COMMA do
      advance st;
      params := parse_param () :: !params
    done
  end;
  eat st Lexer.RPAREN;
  List.rev !params

let parse_program st =
  let aggs = ref [] and pfuns = ref [] and main = ref None in
  let rec go () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.KW "aggregate" ->
        aggs := parse_aggdecl st :: !aggs;
        go ()
    | Lexer.KW "parallel" ->
        advance st;
        eat st (Lexer.KW "void");
        let name = eat_ident st in
        let params = parse_params st in
        let body = parse_block st in
        pfuns := { pf_name = name; pf_params = params; pf_body = body } :: !pfuns;
        go ()
    | Lexer.KW "void" ->
        advance st;
        eat st (Lexer.KW "main");
        eat st Lexer.LPAREN;
        eat st Lexer.RPAREN;
        let body = parse_block st in
        (match !main with
        | None -> main := Some body
        | Some _ -> fail st "duplicate main");
        go ()
    | _ -> fail st "expected 'aggregate', 'parallel' or 'void main'"
  in
  go ();
  match !main with
  | None -> raise (Error "program has no main function")
  | Some m -> { aggs = List.rev !aggs; pfuns = List.rev !pfuns; main = m }

let with_state src f =
  let toks =
    try Array.of_list (Lexer.tokenize src) with Lexer.Error msg -> raise (Error msg)
  in
  f { toks; pos = 0 }

let parse src = with_state src parse_program

let parse_expr src =
  with_state src (fun st ->
      let e = parse_or st in
      eat st Lexer.EOF;
      e)
