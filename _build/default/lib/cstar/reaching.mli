(** The "reaching unstructured accesses" analysis (paper section 4.3).

    For each aggregate at each program point: may cached copies of the
    aggregate's elements exist on remote processors because of unstructured
    (non-home) accesses on some path?  Transfer functions per parallel call,
    per aggregate A (from the call's {!Access.summary}):

    + owner (home) writes to A kill the property (remote copies invalidated);
    + unstructured writes kill and re-generate it;
    + unstructured reads generate it without killing.

    Encoded as gen/kill bit vectors over the aggregate universe and solved
    with {!Dataflow.solve_forward}. *)

open Ccdsm_util

type t = {
  cfg : Cfg.t;
  agg_index : (string * int) list;  (** aggregate name -> bit position *)
  result : Dataflow.result;
  site_in : Bitvec.t array;  (** in-fact per call site id *)
}

val analyze : Sema.t -> ?summaries:(string * Access.summary) list -> Ast.stmt list -> t
(** Analyze a main body.  [summaries] defaults to {!Access.analyze_all}. *)

val reaches : t -> site:int -> agg:string -> bool
(** Does the property hold for [agg] on entry to call site [site]? *)

val pp : Format.formatter -> t -> unit
