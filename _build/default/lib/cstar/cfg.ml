open Ast

type kind = Entry | Exit | Nop | Branch | Join | Call of { func : string; site : int }

type t = {
  kinds : kind array;
  succs : int list array;
  preds : int list array;
  entry : int;
  exit : int;
}

type builder = {
  mutable nodes : kind list;  (* reversed *)
  mutable n : int;
  mutable edges : (int * int) list;
  mutable next_site : int;
}

let add_node b kind =
  let id = b.n in
  b.nodes <- kind :: b.nodes;
  b.n <- id + 1;
  id

let add_edge b src dst = b.edges <- (src, dst) :: b.edges

(* Wire a statement sequence after node [pred]; returns the node that control
   leaves through. *)
let rec seq b pred stmts = List.fold_left (stmt b) pred stmts

and stmt b pred = function
  | Slet _ | Sassign _ | Sstore _ ->
      let n = add_node b Nop in
      add_edge b pred n;
      n
  | Scall func ->
      let site = b.next_site in
      b.next_site <- site + 1;
      let n = add_node b (Call { func; site }) in
      add_edge b pred n;
      n
  | Sphase (_, body) -> seq b pred body
  | Sif (_, then_, else_) ->
      let cond = add_node b Branch in
      add_edge b pred cond;
      let t_end = seq b cond then_ in
      let e_end = seq b cond else_ in
      let join = add_node b Join in
      add_edge b t_end join;
      add_edge b e_end join;
      join
  | Swhile (_, body) ->
      let cond = add_node b Branch in
      add_edge b pred cond;
      let body_end = seq b cond body in
      add_edge b body_end cond;
      let exit = add_node b Join in
      add_edge b cond exit;
      exit
  | Sfor (init, _, step, body) ->
      let init_end = stmt b pred init in
      let cond = add_node b Branch in
      add_edge b init_end cond;
      let body_end = seq b cond body in
      let step_end = stmt b body_end step in
      add_edge b step_end cond;
      let exit = add_node b Join in
      add_edge b cond exit;
      exit

let build stmts =
  let b = { nodes = []; n = 0; edges = []; next_site = 0 } in
  let entry = add_node b Entry in
  let last = seq b entry stmts in
  let exit = add_node b Exit in
  add_edge b last exit;
  let kinds = Array.of_list (List.rev b.nodes) in
  let succs = Array.make b.n [] and preds = Array.make b.n [] in
  List.iter
    (fun (s, d) ->
      succs.(s) <- d :: succs.(s);
      preds.(d) <- s :: preds.(d))
    b.edges;
  { kinds; succs; preds; entry; exit }

let num_nodes t = Array.length t.kinds

let call_sites t =
  let sites = ref [] in
  Array.iter
    (function Call { func; site } -> sites := (site, func) :: !sites | _ -> ())
    t.kinds;
  List.sort compare !sites

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i kind ->
      let name =
        match kind with
        | Entry -> "entry"
        | Exit -> "exit"
        | Nop -> "nop"
        | Branch -> "branch"
        | Join -> "join"
        | Call { func; site } -> Printf.sprintf "call %s (site %d)" func site
      in
      Format.fprintf ppf "%d: %s -> [%s]@ " i name
        (String.concat "," (List.map string_of_int (List.sort compare t.succs.(i)))))
    t.kinds;
  Format.fprintf ppf "@]"
