type t = {
  name : string;
  phase_begin : phase:int -> unit;
  phase_end : phase:int -> unit;
  flush_schedule : phase:int -> unit;
  stats : unit -> (string * float) list;
}

let passive ~name =
  {
    name;
    phase_begin = (fun ~phase:_ -> ());
    phase_end = (fun ~phase:_ -> ());
    flush_schedule = (fun ~phase:_ -> ());
    stats = (fun () -> []);
  }
