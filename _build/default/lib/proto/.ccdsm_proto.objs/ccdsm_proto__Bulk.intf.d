lib/proto/bulk.mli:
