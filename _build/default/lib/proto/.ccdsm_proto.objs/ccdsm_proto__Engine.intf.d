lib/proto/engine.mli: Ccdsm_tempest Coherence Directory
