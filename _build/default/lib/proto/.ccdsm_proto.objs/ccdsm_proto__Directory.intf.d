lib/proto/directory.mli: Ccdsm_tempest Ccdsm_util Nodeset
