lib/proto/bulk.ml: List
