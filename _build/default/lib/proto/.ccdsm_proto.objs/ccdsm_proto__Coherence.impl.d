lib/proto/coherence.ml:
