lib/proto/engine.ml: Ccdsm_tempest Ccdsm_util Coherence Directory Nodeset
