lib/proto/write_update.mli: Ccdsm_tempest Coherence
