lib/proto/write_update.ml: Array Bulk Ccdsm_tempest Ccdsm_util Coherence Hashtbl List Nodeset
