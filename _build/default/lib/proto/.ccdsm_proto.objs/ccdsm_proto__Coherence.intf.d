lib/proto/coherence.mli:
