lib/proto/directory.ml: Array Ccdsm_tempest Ccdsm_util Format Nodeset
