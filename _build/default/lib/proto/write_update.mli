(** Producer-initiated write-update protocol (baseline).

    Models the hand-written application-specific protocols of Falsafi et al.
    that the paper's hand-optimized SPMD Barnes uses: instead of invalidating
    consumers, a producer pushes fresh copies of the blocks it wrote to every
    subscribed consumer at the end of each parallel phase, so steady-state
    producer-consumer data moves with one bulk message instead of the
    4-message invalidate/request/response chain.

    As the paper notes (section 3.2), update protocols do not provide
    sequential consistency in general; they are safe here because the SPMD
    applications that use them synchronize with barriers at phase boundaries
    and never race within a phase.  Consequently this protocol does not
    maintain the {!Directory} reader/writer invariant — it keeps its own
    owner + subscriber state:

    - the first read by a node subscribes it to the block (a demand miss);
      its ReadOnly copy is thereafter kept fresh by updates and never
      invalidated;
    - a write by the owning node re-arms dirty tracking with a cheap local
      fault (block re-protection at phase boundaries); a write by any other
      node migrates ownership with a round trip;
    - [phase_end] pushes every dirty block to its subscribers in
      neighbouring-block-coalesced bulk messages, charged to the producer's
      presend bucket. *)

val coherence : Ccdsm_tempest.Machine.t -> Coherence.t
(** Installs the protocol's fault handlers on the machine. *)
