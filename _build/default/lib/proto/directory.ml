open Ccdsm_util
module Machine = Ccdsm_tempest.Machine
module Tag = Ccdsm_tempest.Tag

type entry = Exclusive of int | Shared of Nodeset.t

type t = { machine : Machine.t; mutable entries : entry option array }

let create machine = { machine; entries = Array.make 128 None }

let ensure t b =
  if b >= Array.length t.entries then begin
    let cap = max (b + 1) (2 * Array.length t.entries) in
    let entries = Array.make cap None in
    Array.blit t.entries 0 entries 0 (Array.length t.entries);
    t.entries <- entries
  end

let get t b =
  ensure t b;
  match t.entries.(b) with
  | Some e -> e
  | None -> Exclusive (Machine.home t.machine b)

let set t b e =
  ensure t b;
  t.entries.(b) <- Some e

let holders t b =
  match get t b with Exclusive o -> Nodeset.singleton o | Shared readers -> readers

let check_invariant t b =
  let m = t.machine in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  match get t b with
  | Exclusive o ->
      let bad = ref None in
      for n = 0 to Machine.num_nodes m - 1 do
        let tg = Machine.tag m ~node:n b in
        if n = o && not (Tag.equal tg Tag.Read_write) then
          bad := Some (n, tg, "owner must be ReadWrite")
        else if n <> o && not (Tag.equal tg Tag.Invalid) then
          bad := Some (n, tg, "non-owner must be Invalid")
      done;
      (match !bad with
      | None -> Ok ()
      | Some (n, tg, why) -> fail "block %d Exclusive %d: node %d is %a (%s)" b o n Tag.pp tg why)
  | Shared readers ->
      if Nodeset.is_empty readers then fail "block %d Shared with empty reader set" b
      else begin
        let bad = ref None in
        for n = 0 to Machine.num_nodes m - 1 do
          let tg = Machine.tag m ~node:n b in
          if Nodeset.mem n readers && not (Tag.equal tg Tag.Read_only) then
            bad := Some (n, tg, "reader must be ReadOnly")
          else if (not (Nodeset.mem n readers)) && not (Tag.equal tg Tag.Invalid) then
            bad := Some (n, tg, "non-reader must be Invalid")
        done;
        match !bad with
        | None -> Ok ()
        | Some (n, tg, why) -> fail "block %d Shared: node %d is %a (%s)" b n Tag.pp tg why
      end
