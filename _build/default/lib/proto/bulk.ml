let runs blocks =
  let sorted = List.sort_uniq compare blocks in
  match sorted with
  | [] -> []
  | first :: rest ->
      let acc, start, len =
        List.fold_left
          (fun (acc, start, len) b ->
            if b = start + len then (acc, start, len + 1) else ((start, len) :: acc, b, 1))
          ([], first, 1) rest
      in
      List.rev ((start, len) :: acc)

let message_count blocks = List.length (runs blocks)
