let table ~header rows =
  let ncol = List.length header in
  List.iter
    (fun r -> if List.length r <> ncol then invalid_arg "Ascii.table: ragged row")
    rows;
  let widths = Array.make ncol 0 in
  let note r = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) r in
  note header;
  List.iter note rows;
  let buf = Buffer.create 256 in
  let pad i cell =
    Buffer.add_string buf cell;
    Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' ')
  in
  let line r =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        pad i cell)
      r;
    Buffer.add_char buf '\n'
  in
  line header;
  line (List.map (fun w -> String.make w '-') (Array.to_list widths));
  List.iter line rows;
  Buffer.contents buf

let segment_chars = [| '#'; '%'; '.'; '+'; '='; '*'; 'o' |]

let stacked_bars ~title ~segments ~rows ?(width = 60) ?value_label () =
  let nseg = List.length segments in
  if nseg > Array.length segment_chars then invalid_arg "Ascii.stacked_bars: too many segments";
  List.iter
    (fun (_, v) ->
      if Array.length v <> nseg then invalid_arg "Ascii.stacked_bars: ragged row")
    rows;
  let totals = List.map (fun (_, v) -> Array.fold_left ( +. ) 0.0 v) rows in
  let vmax = List.fold_left Float.max 1e-30 totals in
  let vmin = List.fold_left Float.min infinity totals in
  let value_label =
    match value_label with
    | Some f -> f
    | None -> fun total -> Printf.sprintf "%.2fx" (total /. vmin)
  in
  let label_w = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows in
  let buf = Buffer.create 512 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length title) '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, v) ->
      Buffer.add_string buf label;
      Buffer.add_string buf (String.make (label_w - String.length label) ' ');
      Buffer.add_string buf " |";
      let total = Array.fold_left ( +. ) 0.0 v in
      (* Give each segment a length proportional to its share of the bar,
         rounding while keeping the bar's total length proportional to the
         row total. *)
      let bar_len = int_of_float (Float.round (total /. vmax *. float_of_int width)) in
      let drawn = ref 0 in
      let acc = ref 0.0 in
      Array.iteri
        (fun i x ->
          acc := !acc +. x;
          let upto =
            if total = 0.0 then 0
            else int_of_float (Float.round (!acc /. total *. float_of_int bar_len))
          in
          let n = max 0 (upto - !drawn) in
          Buffer.add_string buf (String.make n segment_chars.(i));
          drawn := !drawn + n)
        v;
      Buffer.add_string buf (String.make (width - !drawn) ' ');
      Buffer.add_string buf "| ";
      Buffer.add_string buf (value_label total);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf "legend:";
  List.iteri
    (fun i name -> Buffer.add_string buf (Printf.sprintf " [%c]=%s" segment_chars.(i) name))
    segments;
  Buffer.add_char buf '\n';
  Buffer.contents buf
