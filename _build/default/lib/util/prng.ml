type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: mixes the incremented counter into an output word. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  x mod bound

let float t bound =
  (* 53 random bits scaled into [0, bound). *)
  let x = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x /. 9007199254740992.0 *. bound

let float_range t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-12 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
