type t = { width : int; words : Bytes.t }

(* The vector is stored little-endian in a byte string; bit [i] lives in byte
   [i lsr 3] at position [i land 7].  Bytes beyond [width] are kept zero so
   [equal]/[count] can work bytewise without masking. *)

let bytes_for n = (n + 7) / 8

let create n =
  assert (n >= 0);
  { width = n; words = Bytes.make (bytes_for n) '\000' }

let length t = t.width

let copy t = { width = t.width; words = Bytes.copy t.words }

let check t i = if i < 0 || i >= t.width then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.words b (Char.chr (Char.code (Bytes.get t.words b) lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = i lsr 3 in
  Bytes.set t.words b (Char.chr (Char.code (Bytes.get t.words b) land lnot (1 lsl (i land 7)) land 0xff))

let assign t i v = if v then set t i else clear t i

let is_empty t =
  let n = Bytes.length t.words in
  let rec go i = i >= n || (Bytes.get t.words i = '\000' && go (i + 1)) in
  go 0

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun c -> tbl.(Char.code c)

let count t =
  let n = Bytes.length t.words in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + popcount_byte (Bytes.get t.words i)
  done;
  !acc

let same_width a b = if a.width <> b.width then invalid_arg "Bitvec: width mismatch"

let equal a b = same_width a b; Bytes.equal a.words b.words

let binop f ~dst src =
  same_width dst src;
  let changed = ref false in
  for i = 0 to Bytes.length dst.words - 1 do
    let d = Char.code (Bytes.get dst.words i) and s = Char.code (Bytes.get src.words i) in
    let r = f d s in
    if r <> d then begin
      changed := true;
      Bytes.set dst.words i (Char.chr r)
    end
  done;
  !changed

let union_into ~dst src = binop (fun d s -> d lor s) ~dst src
let inter_into ~dst src = binop (fun d s -> d land s) ~dst src
let diff_into ~dst src = binop (fun d s -> d land lnot s land 0xff) ~dst src

let blit ~src ~dst =
  same_width src dst;
  Bytes.blit src.words 0 dst.words 0 (Bytes.length src.words)

let fill t v =
  if not v then Bytes.fill t.words 0 (Bytes.length t.words) '\000'
  else begin
    Bytes.fill t.words 0 (Bytes.length t.words) '\255';
    (* Clear the padding bits past [width] to keep the representation
       canonical. *)
    for i = t.width to (Bytes.length t.words * 8) - 1 do
      let b = i lsr 3 in
      Bytes.set t.words b (Char.chr (Char.code (Bytes.get t.words b) land lnot (1 lsl (i land 7)) land 0xff))
    done
  end

let iter_set t f =
  for i = 0 to t.width - 1 do
    if get t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.width - 1 downto 0 do
    if get t i then acc := i :: !acc
  done;
  !acc

let of_list n l =
  let t = create n in
  List.iter (set t) l;
  t

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (to_list t)))
