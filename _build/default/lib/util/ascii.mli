(** Plain-text rendering of tables and the paper's stacked-bar figures. *)

val table : header:string list -> string list list -> string
(** Render rows under a header with aligned columns.  Every row must have the
    same arity as the header. *)

val stacked_bars :
  title:string ->
  segments:string list ->
  rows:(string * float array) list ->
  ?width:int ->
  ?value_label:(float -> string) ->
  unit ->
  string
(** Render one bar per row, split into [segments] (each value array must have
    one entry per segment).  Bars are scaled so the longest fits in [width]
    characters; each segment uses a distinct fill character, explained in a
    legend.  [value_label] formats the total printed after each bar (default:
    relative to the smallest total, like the paper's figures). *)
