(** Summary statistics for measurement results. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

val summarize : float array -> summary
(** @raise Invalid_argument on an empty array. *)

val mean : float array -> float
val total : float array -> float
val max_index : float array -> int
(** Index of the maximum element (smallest index on ties). *)

val relative : baseline:float -> float -> float
(** [relative ~baseline v] is [v /. baseline]; how many times slower than the
    baseline a measurement is (the units of the paper's figures). *)

val pct : part:float -> whole:float -> float
(** Percentage, safe when [whole = 0]. *)

val pp_summary : Format.formatter -> summary -> unit
