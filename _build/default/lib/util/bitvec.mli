(** Fixed-width mutable bit vectors.

    Backing store for the iterative bit-vector data-flow framework in
    [Ccdsm_cstar.Dataflow] and for block-presence maps in the protocol
    layer.  All binary operations require operands of equal width. *)

type t

val create : int -> t
(** [create n] is an all-zeros vector of width [n]. [n >= 0]. *)

val length : t -> int

val copy : t -> t

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit

val is_empty : t -> bool
val count : t -> int
(** Number of set bits. *)

val equal : t -> t -> bool

val union_into : dst:t -> t -> bool
(** [union_into ~dst src] sets [dst <- dst | src]; returns [true] iff [dst]
    changed.  The change flag drives data-flow fixpoint detection. *)

val inter_into : dst:t -> t -> bool
val diff_into : dst:t -> t -> bool
(** [diff_into ~dst src] sets [dst <- dst & ~src]; returns whether changed. *)

val blit : src:t -> dst:t -> unit

val fill : t -> bool -> unit

val iter_set : t -> (int -> unit) -> unit
(** Apply a function to the index of every set bit, in increasing order. *)

val to_list : t -> int list
(** Indices of set bits in increasing order. *)

val of_list : int -> int list -> t

val pp : Format.formatter -> t -> unit
(** Prints as e.g. [{1,4,7}]. *)
