(** Deterministic pseudo-random number generation.

    All experiments in this repository must be reproducible bit-for-bit, so
    randomness never comes from the ambient [Random] state: every workload
    generator receives an explicit {!t} seeded from the experiment
    configuration.  The generator is splitmix64, which is small, fast and has
    well-understood statistical quality for simulation workloads. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    (statistically) independent of [t]'s subsequent output.  Used to give
    sub-workloads their own streams without coupling their consumption. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
