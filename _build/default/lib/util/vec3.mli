(** Immutable 3-D vectors for the N-body and molecular-dynamics workloads. *)

type t = { x : float; y : float; z : float }

val zero : t
val make : float -> float -> float -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val dot : t -> t -> float
val norm2 : t -> float
(** Squared Euclidean norm. *)

val norm : t -> float
val dist2 : t -> t -> float
val dist : t -> t -> float
val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y]. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
