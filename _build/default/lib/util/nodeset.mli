(** Compact sets of processor-node identifiers.

    Directory entries and communication-schedule marks store sets of nodes on
    the hot path of every simulated coherence action, so the representation is
    a single immutable bit mask.  Node ids must lie in [\[0, 62\]]; the machine
    configuration enforces this bound (the paper's experiments use 32). *)

type t

val max_nodes : int
(** Largest representable node id plus one (63). *)

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val equal : t -> t -> bool
val subset : t -> t -> bool
val choose : t -> int
(** Smallest member. @raise Not_found on the empty set. *)

val iter : (int -> unit) -> t -> unit
(** Ascending order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int list -> t
val pp : Format.formatter -> t -> unit
