type t = int

let max_nodes = 63

let check i =
  if i < 0 || i >= max_nodes then invalid_arg "Nodeset: node id out of range"

let empty = 0
let is_empty t = t = 0

let singleton i = check i; 1 lsl i
let add i t = check i; t lor (1 lsl i)
let remove i t = check i; t land lnot (1 lsl i)
let mem i t = check i; t land (1 lsl i) <> 0
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let cardinal t =
  let rec go t acc = if t = 0 then acc else go (t land (t - 1)) (acc + 1) in
  go t 0

let equal (a : t) b = a = b
let subset a b = a land lnot b = 0

let choose t =
  if t = 0 then raise Not_found;
  let rec go i = if t land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let iter f t =
  for i = 0 to max_nodes - 1 do
    if t land (1 lsl i) <> 0 then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list l = List.fold_left (fun acc i -> add i acc) empty l

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (elements t)))
