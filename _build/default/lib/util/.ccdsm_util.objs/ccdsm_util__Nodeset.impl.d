lib/util/nodeset.ml: Format List String
