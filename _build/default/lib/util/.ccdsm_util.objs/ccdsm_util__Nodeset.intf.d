lib/util/nodeset.mli: Format
