lib/util/bitvec.ml: Array Bytes Char Format List String
