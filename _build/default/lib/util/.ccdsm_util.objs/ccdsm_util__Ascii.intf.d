lib/util/ascii.mli:
