lib/util/prng.mli:
