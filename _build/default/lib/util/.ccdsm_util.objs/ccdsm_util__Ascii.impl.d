lib/util/ascii.ml: Array Buffer Float List Printf String
