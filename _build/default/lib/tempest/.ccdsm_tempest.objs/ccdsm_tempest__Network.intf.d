lib/tempest/network.mli:
