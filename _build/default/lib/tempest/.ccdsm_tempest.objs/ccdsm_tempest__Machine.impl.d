lib/tempest/machine.ml: Array Bytes Ccdsm_util Float Network Tag
