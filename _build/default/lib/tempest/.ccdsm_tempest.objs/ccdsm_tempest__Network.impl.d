lib/tempest/network.ml:
