lib/tempest/tag.mli: Format
