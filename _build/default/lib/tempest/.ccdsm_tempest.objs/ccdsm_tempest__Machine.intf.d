lib/tempest/machine.mli: Network Tag
