lib/tempest/tag.ml: Format
