type t = {
  msg_startup_us : float;
  per_byte_us : float;
  fault_us : float;
  barrier_hop_us : float;
  ctrl_bytes : int;
}

let default =
  { msg_startup_us = 75.0; per_byte_us = 0.10; fault_us = 40.0; barrier_hop_us = 10.0; ctrl_bytes = 16 }

let hardware_dsm =
  { msg_startup_us = 5.0; per_byte_us = 0.02; fault_us = 2.0; barrier_hop_us = 2.0; ctrl_bytes = 16 }

let msg_cost t ~bytes = t.msg_startup_us +. (float_of_int bytes *. t.per_byte_us)

let barrier_cost t ~nodes =
  let rec log2_ceil n acc = if n <= 1 then acc else log2_ceil ((n + 1) / 2) (acc + 1) in
  float_of_int (log2_ceil nodes 0) *. t.barrier_hop_us

let round_trip t ~bytes = msg_cost t ~bytes:t.ctrl_bytes +. msg_cost t ~bytes
