(** Interconnect cost model.

    The simulator does not route messages; it prices them.  A message costs a
    fixed software startup plus a per-byte transfer cost, which is the
    economics that make the paper's bulk-coalesced presend messages cheaper
    than per-block demand misses.  Defaults approximate Blizzard on the CM-5,
    where the paper reports a 200 microsecond average remote access latency. *)

type t = {
  msg_startup_us : float;  (** software send+receive overhead per message *)
  per_byte_us : float;  (** transfer cost per payload byte *)
  fault_us : float;  (** access-fault vectoring overhead to a user handler *)
  barrier_hop_us : float;  (** per-tree-level cost of a barrier *)
  ctrl_bytes : int;  (** payload size of a control (non-data) message *)
}

val default : t
(** CM-5/Blizzard-flavoured parameters (see DESIGN.md section 5). *)

val hardware_dsm : t
(** A hardware-assisted DSM flavour (an order of magnitude faster messages),
    used by the block-size/latency sensitivity ablation that backs the
    paper's section 5.4 discussion. *)

val msg_cost : t -> bytes:int -> float
(** Cost in microseconds of one message carrying [bytes] of payload. *)

val barrier_cost : t -> nodes:int -> float
(** Cost of a global barrier over [nodes] processors. *)

val round_trip : t -> bytes:int -> float
(** Request/response pair: one control message out, [bytes] of data back. *)
