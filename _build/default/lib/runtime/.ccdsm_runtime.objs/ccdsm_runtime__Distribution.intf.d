lib/runtime/distribution.mli: Format
