lib/runtime/distribution.ml: Array Format
