lib/runtime/shared_heap.ml: Array Ccdsm_tempest
