lib/runtime/aggregate.ml: Array Ccdsm_tempest Distribution Printf
