lib/runtime/shared_heap.mli: Ccdsm_tempest
