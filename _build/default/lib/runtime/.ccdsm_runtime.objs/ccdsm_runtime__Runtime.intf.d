lib/runtime/runtime.mli: Aggregate Ccdsm_core Ccdsm_proto Ccdsm_tempest Shared_heap
