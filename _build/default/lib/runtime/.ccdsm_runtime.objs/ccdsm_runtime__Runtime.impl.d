lib/runtime/runtime.ml: Aggregate Array Ccdsm_core Ccdsm_proto Ccdsm_tempest Distribution List Option Shared_heap
