lib/runtime/aggregate.mli: Ccdsm_tempest Distribution
