module Machine = Ccdsm_tempest.Machine

type t = {
  name : string;
  machine : Machine.t;
  dims : int array;
  elem_words : int;
  dist : Distribution.t;
  bases : Machine.addr array;  (* base of each node's contiguous region *)
  nodes : int;
}

let mk machine ~name ~elem_words ~dims ~dist counts =
  let nodes = Machine.num_nodes machine in
  (match Distribution.validate dist ~nodes ~dims with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Aggregate %s: %s" name msg));
  let bases =
    Array.init nodes (fun node ->
        let words = max 1 (counts node * elem_words) in
        Machine.alloc machine ~words ~home:node)
  in
  { name; machine; dims; elem_words; dist; bases; nodes }

let create_1d machine ~name ?(elem_words = 1) ~n ~dist () =
  if n <= 0 then invalid_arg "Aggregate.create_1d: empty";
  mk machine ~name ~elem_words ~dims:[| n |] ~dist (fun node ->
      Distribution.owned_count1 dist ~nodes:(Machine.num_nodes machine) ~n ~node)

let create_2d machine ~name ?(elem_words = 1) ~rows ~cols ~dist () =
  if rows <= 0 || cols <= 0 then invalid_arg "Aggregate.create_2d: empty";
  mk machine ~name ~elem_words ~dims:[| rows; cols |] ~dist (fun node ->
      Distribution.owned_count2 dist ~nodes:(Machine.num_nodes machine) ~rows ~cols ~node)

let name t = t.name
let dims t = t.dims
let size t = Array.fold_left ( * ) 1 t.dims
let elem_words t = t.elem_words
let dist t = t.dist

let check_field t field =
  if field < 0 || field >= t.elem_words then
    invalid_arg (Printf.sprintf "Aggregate %s: field %d out of range" t.name field)

let owner1 t i = Distribution.owner1 t.dist ~nodes:t.nodes ~n:t.dims.(0) i

let owner2 t i j =
  Distribution.owner2 t.dist ~nodes:t.nodes ~rows:t.dims.(0) ~cols:t.dims.(1) i j

let addr1 t i ~field =
  check_field t field;
  if i < 0 || i >= t.dims.(0) then invalid_arg (Printf.sprintf "Aggregate %s: index %d" t.name i);
  let o = owner1 t i in
  let r = Distribution.rank1 t.dist ~nodes:t.nodes ~n:t.dims.(0) i in
  t.bases.(o) + (r * t.elem_words) + field

let addr2 t i j ~field =
  check_field t field;
  if i < 0 || i >= t.dims.(0) || j < 0 || j >= t.dims.(1) then
    invalid_arg (Printf.sprintf "Aggregate %s: index (%d,%d)" t.name i j);
  let o = owner2 t i j in
  let r = Distribution.rank2 t.dist ~nodes:t.nodes ~rows:t.dims.(0) ~cols:t.dims.(1) i j in
  t.bases.(o) + (r * t.elem_words) + field

let read1 t ~node i ~field = Machine.read t.machine ~node (addr1 t i ~field)
let write1 t ~node i ~field v = Machine.write t.machine ~node (addr1 t i ~field) v
let read2 t ~node i j ~field = Machine.read t.machine ~node (addr2 t i j ~field)
let write2 t ~node i j ~field v = Machine.write t.machine ~node (addr2 t i j ~field) v

let peek1 t i ~field = Machine.peek t.machine (addr1 t i ~field)
let peek2 t i j ~field = Machine.peek t.machine (addr2 t i j ~field)
let poke1 t i ~field v = Machine.poke t.machine (addr1 t i ~field) v
let poke2 t i j ~field v = Machine.poke t.machine (addr2 t i j ~field) v
