type t = Block1d | Row_block | Tiled of { pr : int; pc : int } | Cyclic

let validate t ~nodes ~dims =
  let rank = Array.length dims in
  match t with
  | Block1d | Cyclic -> if rank = 1 then Ok () else Error "1-D distribution on non-1-D aggregate"
  | Row_block -> if rank = 2 then Ok () else Error "row-block distribution on non-2-D aggregate"
  | Tiled { pr; pc } ->
      if rank <> 2 then Error "tiled distribution on non-2-D aggregate"
      else if pr <= 0 || pc <= 0 then Error "tiled distribution with non-positive grid"
      else if pr * pc <> nodes then Error "tiled grid does not match node count"
      else Ok ()

let chunk ~n ~parts ~part =
  (* The first [n mod parts] chunks get one extra element. *)
  let q = n / parts and r = n mod parts in
  let lo = (part * q) + min part r in
  let hi = lo + q + if part < r then 1 else 0 in
  (lo, hi)

let chunk_owner ~n ~parts i =
  let q = n / parts and r = n mod parts in
  let boundary = r * (q + 1) in
  if i < boundary then i / (q + 1) else r + ((i - boundary) / max q 1)

let owner1 t ~nodes ~n i =
  match t with
  | Block1d -> chunk_owner ~n ~parts:nodes i
  | Cyclic -> i mod nodes
  | Row_block | Tiled _ -> invalid_arg "Distribution.owner1: 2-D distribution"

let owner2 t ~nodes ~rows ~cols i j =
  match t with
  | Row_block ->
      ignore cols;
      chunk_owner ~n:rows ~parts:nodes i
  | Tiled { pr; pc } ->
      let oi = chunk_owner ~n:rows ~parts:pr i in
      let oj = chunk_owner ~n:cols ~parts:pc j in
      (oi * pc) + oj
  | Block1d | Cyclic ->
      ignore nodes;
      invalid_arg "Distribution.owner2: 1-D distribution"

let rank1 t ~nodes ~n i =
  match t with
  | Block1d ->
      let o = chunk_owner ~n ~parts:nodes i in
      let lo, _ = chunk ~n ~parts:nodes ~part:o in
      i - lo
  | Cyclic -> i / nodes
  | Row_block | Tiled _ -> invalid_arg "Distribution.rank1: 2-D distribution"

let rank2 t ~nodes ~rows ~cols i j =
  match t with
  | Row_block ->
      let o = chunk_owner ~n:rows ~parts:nodes i in
      let lo, _ = chunk ~n:rows ~parts:nodes ~part:o in
      ((i - lo) * cols) + j
  | Tiled { pr; pc } ->
      let oi = chunk_owner ~n:rows ~parts:pr i in
      let oj = chunk_owner ~n:cols ~parts:pc j in
      let rlo, _ = chunk ~n:rows ~parts:pr ~part:oi in
      let clo, chi = chunk ~n:cols ~parts:pc ~part:oj in
      ((i - rlo) * (chi - clo)) + (j - clo)
  | Block1d | Cyclic ->
      ignore nodes;
      invalid_arg "Distribution.rank2: 1-D distribution"

let owned_count1 t ~nodes ~n ~node =
  match t with
  | Block1d ->
      let lo, hi = chunk ~n ~parts:nodes ~part:node in
      hi - lo
  | Cyclic -> ((n - node - 1) / nodes) + if node < n then 1 else 0
  | Row_block | Tiled _ -> invalid_arg "Distribution.owned_count1"

let owned_count2 t ~nodes ~rows ~cols ~node =
  match t with
  | Row_block ->
      let lo, hi = chunk ~n:rows ~parts:nodes ~part:node in
      (hi - lo) * cols
  | Tiled { pr; pc } ->
      let oi = node / pc and oj = node mod pc in
      let rlo, rhi = chunk ~n:rows ~parts:pr ~part:oi in
      let clo, chi = chunk ~n:cols ~parts:pc ~part:oj in
      (rhi - rlo) * (chi - clo)
  | Block1d | Cyclic -> invalid_arg "Distribution.owned_count2"

let iter_owned1 t ~nodes ~n ~node f =
  match t with
  | Block1d ->
      let lo, hi = chunk ~n ~parts:nodes ~part:node in
      for i = lo to hi - 1 do
        f i
      done
  | Cyclic ->
      let i = ref node in
      while !i < n do
        f !i;
        i := !i + nodes
      done
  | Row_block | Tiled _ -> invalid_arg "Distribution.iter_owned1"

let iter_owned2 t ~nodes ~rows ~cols ~node f =
  match t with
  | Row_block ->
      let lo, hi = chunk ~n:rows ~parts:nodes ~part:node in
      for i = lo to hi - 1 do
        for j = 0 to cols - 1 do
          f i j
        done
      done
  | Tiled { pr; pc } ->
      ignore nodes;
      let oi = node / pc and oj = node mod pc in
      let rlo, rhi = chunk ~n:rows ~parts:pr ~part:oi in
      let clo, chi = chunk ~n:cols ~parts:pc ~part:oj in
      for i = rlo to rhi - 1 do
        for j = clo to chi - 1 do
          f i j
        done
      done
  | Block1d | Cyclic -> invalid_arg "Distribution.iter_owned2"

let pp ppf = function
  | Block1d -> Format.pp_print_string ppf "block"
  | Row_block -> Format.pp_print_string ppf "row-block"
  | Tiled { pr; pc } -> Format.fprintf ppf "tiled(%dx%d)" pr pc
  | Cyclic -> Format.pp_print_string ppf "cyclic"
