(** Computation and data distributions for aggregates.

    C\*\* provides "block distributions on 1-dimensional Aggregates and
    row-block and tiled distributions on 2-dimensional Aggregates"
    (section 4.1); Cyclic is included for load-balance experiments.  The
    distribution determines both which node *executes* each element's
    parallel-function invocation and where the element's data is *homed*
    (each element lives in its owner's region of the shared segment). *)

type t =
  | Block1d  (** contiguous chunks of a 1-D aggregate *)
  | Row_block  (** contiguous bands of rows of a 2-D aggregate *)
  | Tiled of { pr : int; pc : int }  (** pr x pc processor grid over a 2-D aggregate *)
  | Cyclic  (** round-robin over a 1-D aggregate *)

val validate : t -> nodes:int -> dims:int array -> (unit, string) result
(** Check the distribution fits the aggregate's rank and the node count. *)

val chunk : n:int -> parts:int -> part:int -> int * int
(** Balanced block partition: [chunk ~n ~parts ~part] is the half-open range
    of indices owned by [part]; ranges are contiguous, cover [0, n) and
    differ in size by at most one. *)

val owner1 : t -> nodes:int -> n:int -> int -> int
(** Owning node of element [i] of a 1-D aggregate of size [n]. *)

val owner2 : t -> nodes:int -> rows:int -> cols:int -> int -> int -> int

val rank1 : t -> nodes:int -> n:int -> int -> int
(** Position of element [i] within its owner's contiguous region. *)

val rank2 : t -> nodes:int -> rows:int -> cols:int -> int -> int -> int

val owned_count1 : t -> nodes:int -> n:int -> node:int -> int
val owned_count2 : t -> nodes:int -> rows:int -> cols:int -> node:int -> int

val iter_owned1 : t -> nodes:int -> n:int -> node:int -> (int -> unit) -> unit
(** Iterate the elements owned by [node] in ascending index order. *)

val iter_owned2 :
  t -> nodes:int -> rows:int -> cols:int -> node:int -> (int -> int -> unit) -> unit

val pp : Format.formatter -> t -> unit
