lib/core/schedule.ml: Ccdsm_tempest Ccdsm_util Format Hashtbl List Nodeset
