lib/core/predictive.mli: Ccdsm_proto Ccdsm_tempest Schedule
