lib/core/predictive.ml: Ccdsm_proto Ccdsm_tempest Ccdsm_util Hashtbl List Nodeset Schedule
