lib/core/schedule.mli: Ccdsm_tempest Ccdsm_util Format Nodeset
