lib/apps/barnes_spmd.ml: Barnes Ccdsm_runtime
