lib/apps/water.ml: Array Ccdsm_cstar Ccdsm_runtime Ccdsm_tempest Ccdsm_util Float Hashtbl Lazy List
