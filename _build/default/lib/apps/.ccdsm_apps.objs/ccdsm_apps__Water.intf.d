lib/apps/water.mli: Ccdsm_runtime
