lib/apps/irregular.mli: Ccdsm_runtime
