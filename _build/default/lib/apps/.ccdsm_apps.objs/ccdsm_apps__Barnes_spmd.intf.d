lib/apps/barnes_spmd.mli: Barnes Ccdsm_runtime
