lib/apps/barnes.ml: Array Ccdsm_runtime Ccdsm_tempest Ccdsm_util Float Fun Hashtbl List
