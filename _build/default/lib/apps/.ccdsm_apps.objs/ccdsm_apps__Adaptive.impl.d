lib/apps/adaptive.ml: Array Ccdsm_cstar Ccdsm_runtime Ccdsm_tempest Float Lazy List
