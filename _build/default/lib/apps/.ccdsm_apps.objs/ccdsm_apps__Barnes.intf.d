lib/apps/barnes.mli: Ccdsm_runtime
