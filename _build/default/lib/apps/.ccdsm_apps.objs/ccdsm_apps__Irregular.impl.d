lib/apps/irregular.ml: Array Ccdsm_proto Ccdsm_runtime Ccdsm_tempest Ccdsm_util Float Hashtbl List
