lib/apps/adaptive.mli: Ccdsm_runtime
