(** Hand-optimized SPMD Barnes baseline (paper section 5.2).

    The paper compares its C\*\* versions against a hand-written SPMD Barnes
    that "uses a write-update protocol for efficient shared-memory
    communication" (the application-specific protocols of Falsafi et al.).
    The computation is identical to {!Barnes}; what changes is the memory
    system: the runtime must be created with the
    {!Ccdsm_runtime.Runtime.Write_update} protocol, under which every phase
    boundary pushes freshly-written blocks to their subscribed consumers
    instead of invalidating them. *)

val run : Ccdsm_runtime.Runtime.t -> Barnes.config -> Barnes.stats
(** @raise Invalid_argument if [rt] was not created with the write-update
    protocol — this baseline is meaningless under other protocols. *)
