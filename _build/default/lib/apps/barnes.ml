module Machine = Ccdsm_tempest.Machine
module Runtime = Ccdsm_runtime.Runtime
module Aggregate = Ccdsm_runtime.Aggregate
module Distribution = Ccdsm_runtime.Distribution
module Prng = Ccdsm_util.Prng

type config = {
  n_bodies : int;
  iterations : int;
  theta : float;
  dt : float;
  eps2 : float;
  seed : int;
}

let default = { n_bodies = 16384; iterations = 3; theta = 0.9; dt = 0.001; eps2 = 1e-6; seed = 7 }
let small = { default with n_bodies = 256; iterations = 2 }

type stats = { checksum : float; tree_nodes : int; max_depth : int }

(* Body aggregate fields. *)
let f_mass = 0
let f_px = 1 (* .. 3 *)
let f_vx = 4 (* .. 6 *)
let f_fx = 7 (* .. 9 *)
let body_words = 10

(* Tree node layout (16 shared words). *)
(* Word 0 of a node is its type: 1 = internal, 2 = leaf. *)
let t_mass = 1
let t_com = 2 (* .. 4 *)
let t_body = 5
let t_child = 6 (* .. 13 *)
let t_depth = 14
let node_words = 16

let max_tree_depth = 64

(* The algorithm runs against this abstraction both on the DSM and on flat
   arrays (the reference), so the two produce identical trees, identical
   traversals and identical floating-point results. *)
type mem = {
  read : node:int -> int -> float;
  write : node:int -> int -> float -> unit;
  body_read : node:int -> int -> int -> float;  (* body idx, field *)
  body_write : node:int -> int -> int -> float -> unit;
  alloc_node : node:int -> int;  (* base address of an uninitialized node *)
  reset_pools : unit -> unit;
  iter_pool : node:int -> (int -> unit) -> unit;  (* owned node base addrs *)
  charge : node:int -> float -> unit;
}

(* -- body generation -------------------------------------------------------- *)

(* Uniform ball of radius 0.3 around the box center, small random
   velocities, equal masses. *)
let generate cfg =
  let g = Prng.create ~seed:cfg.seed in
  let bodies = Array.make (cfg.n_bodies * body_words) 0.0 in
  for b = 0 to cfg.n_bodies - 1 do
    let rec point () =
      let x = Prng.float_range g (-1.0) 1.0
      and y = Prng.float_range g (-1.0) 1.0
      and z = Prng.float_range g (-1.0) 1.0 in
      if (x *. x) +. (y *. y) +. (z *. z) <= 1.0 then (x, y, z) else point ()
    in
    let x, y, z = point () in
    let base = b * body_words in
    bodies.(base + f_mass) <- 1.0 /. float_of_int cfg.n_bodies;
    bodies.(base + f_px) <- 0.5 +. (0.3 *. x);
    bodies.(base + f_px + 1) <- 0.5 +. (0.3 *. y);
    bodies.(base + f_px + 2) <- 0.5 +. (0.3 *. z);
    for k = 0 to 2 do
      bodies.(base + f_vx + k) <- Prng.float_range g (-0.05) 0.05
    done
  done;
  bodies

(* -- tree construction ------------------------------------------------------ *)

let init_node mem ~node addr ~ty ~depth =
  mem.write ~node addr (float_of_int ty);
  mem.write ~node (addr + t_mass) 0.0;
  mem.write ~node (addr + t_depth) (float_of_int depth);
  for c = 0 to 7 do
    mem.write ~node (addr + t_child + c) 0.0
  done

let make_leaf mem ~node ~depth ~body ~mass ~x ~y ~z =
  let a = mem.alloc_node ~node in
  mem.write ~node a 2.0;
  mem.write ~node (a + t_mass) mass;
  mem.write ~node (a + t_com) x;
  mem.write ~node (a + t_com + 1) y;
  mem.write ~node (a + t_com + 2) z;
  mem.write ~node (a + t_body) (float_of_int body);
  mem.write ~node (a + t_depth) (float_of_int depth);
  for c = 0 to 7 do
    mem.write ~node (a + t_child + c) 0.0
  done;
  a

let octant ~cx ~cy ~cz ~x ~y ~z =
  (if x >= cx then 1 else 0) + (if y >= cy then 2 else 0) + (if z >= cz then 4 else 0)

let oct_center ~cx ~cy ~cz ~half oct =
  let q = half /. 2.0 in
  ( (if oct land 1 <> 0 then cx +. q else cx -. q),
    (if oct land 2 <> 0 then cy +. q else cy -. q),
    if oct land 4 <> 0 then cz +. q else cz -. q )

(* Insert one body; returns the depth at which it was placed. *)
let insert mem ~node ~root body ~mass ~x ~y ~z =
  let rec go cur ~cx ~cy ~cz ~half ~depth =
    if depth > max_tree_depth then failwith "barnes: maximum tree depth exceeded";
    let oct = octant ~cx ~cy ~cz ~x ~y ~z in
    let slot = cur + t_child + oct in
    let child = int_of_float (mem.read ~node slot) in
    if child = 0 then begin
      let leaf = make_leaf mem ~node ~depth:(depth + 1) ~body ~mass ~x ~y ~z in
      mem.write ~node slot (float_of_int leaf);
      depth + 1
    end
    else if mem.read ~node child = 2.0 then begin
      (* Occupied by a leaf: split the cell and reinsert both bodies. *)
      let inner = mem.alloc_node ~node in
      init_node mem ~node inner ~ty:1 ~depth:(depth + 1);
      mem.write ~node slot (float_of_int inner);
      let ncx, ncy, ncz = oct_center ~cx ~cy ~cz ~half oct in
      let nhalf = half /. 2.0 in
      let ox = mem.read ~node (child + t_com)
      and oy = mem.read ~node (child + t_com + 1)
      and oz = mem.read ~node (child + t_com + 2) in
      let ooct = octant ~cx:ncx ~cy:ncy ~cz:ncz ~x:ox ~y:oy ~z:oz in
      mem.write ~node (child + t_depth) (float_of_int (depth + 2));
      mem.write ~node (inner + t_child + ooct) (float_of_int child);
      go inner ~cx:ncx ~cy:ncy ~cz:ncz ~half:nhalf ~depth:(depth + 1)
    end
    else begin
      let ncx, ncy, ncz = oct_center ~cx ~cy ~cz ~half oct in
      go child ~cx:ncx ~cy:ncy ~cz:ncz ~half:(half /. 2.0) ~depth:(depth + 1)
    end
  in
  go root ~cx:0.5 ~cy:0.5 ~cz:0.5 ~half:0.5 ~depth:0

(* A leaf that was re-depthed during splits may sit deeper than its insertion
   depth; center-of-mass only needs depths of internal nodes, and those are
   exact.  [insert] is careful to update leaf depth on split. *)

let center_of_mass_node mem ~node addr =
  let mass = ref 0.0 and mx = ref 0.0 and my = ref 0.0 and mz = ref 0.0 in
  for c = 0 to 7 do
    let child = int_of_float (mem.read ~node (addr + t_child + c)) in
    if child <> 0 then begin
      let m = mem.read ~node (child + t_mass) in
      mass := !mass +. m;
      mx := !mx +. (m *. mem.read ~node (child + t_com));
      my := !my +. (m *. mem.read ~node (child + t_com + 1));
      mz := !mz +. (m *. mem.read ~node (child + t_com + 2))
    end
  done;
  mem.write ~node (addr + t_mass) !mass;
  if !mass > 0.0 then begin
    mem.write ~node (addr + t_com) (!mx /. !mass);
    mem.write ~node (addr + t_com + 1) (!my /. !mass);
    mem.write ~node (addr + t_com + 2) (!mz /. !mass)
  end

(* -- force computation ------------------------------------------------------ *)

type force_scratch = { stack_addr : int array; stack_half : float array }

let make_scratch () = { stack_addr = Array.make 4096 0; stack_half = Array.make 4096 0.0 }

let compute_force cfg mem scratch ~node ~root body =
  let px = mem.body_read ~node body f_px
  and py = mem.body_read ~node body (f_px + 1)
  and pz = mem.body_read ~node body (f_px + 2)
  and m_self = mem.body_read ~node body f_mass in
  let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
  let sp = ref 0 in
  let push a h =
    scratch.stack_addr.(!sp) <- a;
    scratch.stack_half.(!sp) <- h;
    incr sp
  in
  let theta2 = cfg.theta *. cfg.theta in
  push root 0.5;
  while !sp > 0 do
    decr sp;
    let a = scratch.stack_addr.(!sp) and half = scratch.stack_half.(!sp) in
    let ty = mem.read ~node a in
    let interact m ox oy oz =
      let dx = ox -. px and dy = oy -. py and dz = oz -. pz in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. cfg.eps2 in
      let inv = 1.0 /. (r2 *. sqrt r2) in
      let s = m_self *. m *. inv in
      fx := !fx +. (s *. dx);
      fy := !fy +. (s *. dy);
      fz := !fz +. (s *. dz);
      mem.charge ~node 20.0
    in
    if ty = 2.0 then begin
      if int_of_float (mem.read ~node (a + t_body)) <> body then
        interact (mem.read ~node (a + t_mass))
          (mem.read ~node (a + t_com))
          (mem.read ~node (a + t_com + 1))
          (mem.read ~node (a + t_com + 2))
    end
    else begin
      let m = mem.read ~node (a + t_mass) in
      if m > 0.0 then begin
        let ox = mem.read ~node (a + t_com)
        and oy = mem.read ~node (a + t_com + 1)
        and oz = mem.read ~node (a + t_com + 2) in
        let dx = ox -. px and dy = oy -. py and dz = oz -. pz in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. cfg.eps2 in
        let size = 2.0 *. half in
        if size *. size < theta2 *. r2 then interact m ox oy oz
        else
          for c = 0 to 7 do
            let child = int_of_float (mem.read ~node (a + t_child + c)) in
            if child <> 0 then push child (half /. 2.0)
          done
      end
    end
  done;
  mem.body_write ~node body f_fx !fx;
  mem.body_write ~node body (f_fx + 1) !fy;
  mem.body_write ~node body (f_fx + 2) !fz

let update_body cfg mem ~node body =
  let m = mem.body_read ~node body f_mass in
  mem.charge ~node 10.0;
  for k = 0 to 2 do
    let v = mem.body_read ~node body (f_vx + k) +. (cfg.dt *. mem.body_read ~node body (f_fx + k) /. m) in
    let p = mem.body_read ~node body (f_px + k) +. (cfg.dt *. v) in
    let p = p -. Float.floor p in
    mem.body_write ~node body (f_vx + k) v;
    mem.body_write ~node body (f_px + k) p
  done

(* -- the full simulation (shared between DSM run and reference) ------------- *)

(* [owner] maps a body index to the processor that owns (and inserts) it;
   [foreach_bodies phase f] runs [f ~node body] for every body, grouped by
   owner, with the given phase bracketing; [foreach_nodes phase f] runs one
   task per processor. *)
type driver = {
  mem : mem;
  nprocs : int;
  owner : int -> int;
  foreach_bodies : string -> (node:int -> int -> unit) -> unit;
  foreach_nodes : string -> (node:int -> unit) -> unit;
  region : string -> (unit -> unit) -> unit;
  reduce_max : int -> int;  (* global max of a per-run scalar, with comm cost *)
}

let simulate cfg d =
  let scratch = make_scratch () in
  let stats = ref { checksum = 0.0; tree_nodes = 0; max_depth = 0 } in
  let root = ref 0 in
  for _step = 1 to cfg.iterations do
    (* Phase 1: tree build (unstructured writes). *)
    d.mem.reset_pools ();
    let local_max = Array.make d.nprocs 0 in
    let allocated = ref 0 in
    (* Node 0 reinitializes the root before the parallel build phase. *)
    root := d.mem.alloc_node ~node:0;
    init_node d.mem ~node:0 !root ~ty:1 ~depth:0;
    d.foreach_bodies "make_tree" (fun ~node body ->
        let x = d.mem.body_read ~node body f_px
        and y = d.mem.body_read ~node body (f_px + 1)
        and z = d.mem.body_read ~node body (f_px + 2)
        and mass = d.mem.body_read ~node body f_mass in
        let depth = insert d.mem ~node ~root:!root body ~mass ~x ~y ~z in
        if depth > local_max.(node) then local_max.(node) <- depth);
    let max_depth = d.reduce_max (Array.fold_left max 0 local_max) in
    (* Phase 2: center of mass, bottom-up by level — a loop of home-dominated
       parallel operations under one hoisted directive. *)
    d.region "center_of_mass" (fun () ->
        for depth = max_depth - 1 downto 0 do
          d.foreach_nodes "center_of_mass" (fun ~node ->
              d.mem.iter_pool ~node (fun addr ->
                  if
                    d.mem.read ~node addr = 1.0
                    && int_of_float (d.mem.read ~node (addr + t_depth)) = depth
                  then begin
                    d.mem.charge ~node 5.0;
                    center_of_mass_node d.mem ~node addr
                  end))
        done);
    (* Phase 3: forces (unstructured tree reads). *)
    d.foreach_bodies "forces" (fun ~node body ->
        compute_force cfg d.mem scratch ~node ~root:!root body);
    (* Phase 4: position update (home accesses). *)
    d.foreach_bodies "update" (fun ~node body -> update_body cfg d.mem ~node body);
    (* Count nodes allocated this step. *)
    allocated := 0;
    for p = 0 to d.nprocs - 1 do
      d.mem.iter_pool ~node:p (fun _ -> incr allocated)
    done;
    stats := { !stats with tree_nodes = !allocated; max_depth }
  done;
  (* Checksum over final forces and positions. *)
  let acc = ref 0.0 in
  for b = 0 to cfg.n_bodies - 1 do
    let node = d.owner b in
    for k = 0 to 2 do
      acc :=
        !acc
        +. Float.abs (d.mem.body_read ~node b (f_fx + k))
        +. d.mem.body_read ~node b (f_px + k)
    done
  done;
  { !stats with checksum = !acc }

(* -- DSM run ----------------------------------------------------------------- *)

let pool_cap cfg nprocs = (4 * cfg.n_bodies / nprocs) + 256

let run rt cfg =
  let machine = Runtime.machine rt in
  let nprocs = Runtime.nodes rt in
  let bodies =
    Aggregate.create_1d machine ~name:"bodies" ~elem_words:body_words ~n:cfg.n_bodies
      ~dist:Distribution.Block1d ()
  in
  let init = generate cfg in
  for b = 0 to cfg.n_bodies - 1 do
    for f = 0 to body_words - 1 do
      Aggregate.poke1 bodies b ~field:f init.((b * body_words) + f)
    done
  done;
  (* Per-processor tree-node pools, allocated once and reused every step so
     the rebuilt tree lands on the same cache blocks. *)
  let cap = pool_cap cfg nprocs in
  let pool_base =
    Array.init nprocs (fun p -> Machine.alloc machine ~words:(cap * node_words) ~home:p)
  in
  let pool_used = Array.make nprocs 0 in
  let mem =
    {
      read = (fun ~node a -> Machine.read machine ~node a);
      write = (fun ~node a v -> Machine.write machine ~node a v);
      body_read = (fun ~node b f -> Aggregate.read1 bodies ~node b ~field:f);
      body_write = (fun ~node b f v -> Aggregate.write1 bodies ~node b ~field:f v);
      alloc_node =
        (fun ~node ->
          if pool_used.(node) >= cap then failwith "barnes: node pool exhausted";
          let a = pool_base.(node) + (pool_used.(node) * node_words) in
          pool_used.(node) <- pool_used.(node) + 1;
          a);
      reset_pools = (fun () -> Array.fill pool_used 0 nprocs 0);
      iter_pool =
        (fun ~node f ->
          for k = 0 to pool_used.(node) - 1 do
            f (pool_base.(node) + (k * node_words))
          done);
      charge = (fun ~node us -> Runtime.charge_compute rt ~node us);
    }
  in
  (* Directive placement mirrors the compiled Figure-4 skeleton: every phase
     is scheduled; center_of_mass is a hoisted region. *)
  let phases = Hashtbl.create 8 in
  List.iter
    (fun name -> Hashtbl.replace phases name (Runtime.make_phase rt ~name ~scheduled:true))
    [ "make_tree"; "center_of_mass"; "forces"; "update" ];
  let phase name = Hashtbl.find phases name in
  let in_region = ref false in
  let d =
    {
      mem;
      nprocs;
      owner = (fun b -> Aggregate.owner1 bodies b);
      foreach_bodies =
        (fun name f ->
          let phase = if !in_region then None else Some (phase name) in
          Runtime.parallel_for_1d rt ?phase bodies (fun ~node ~i -> f ~node i));
      foreach_nodes =
        (fun name f ->
          let phase = if !in_region then None else Some (phase name) in
          Runtime.parallel_nodes rt ?phase f);
      region =
        (fun name f ->
          Runtime.phase_region rt (phase name) (fun () ->
              in_region := true;
              Fun.protect ~finally:(fun () -> in_region := false) f));
      reduce_max =
        (fun local ->
          (* Communication cost of a global max combine. *)
          ignore (Runtime.allreduce_sum rt (fun _ -> 0.0));
          local);
    }
  in
  simulate cfg d

(* -- reference ---------------------------------------------------------------- *)

let reference cfg =
  (* Same algorithm on flat arrays: a single tape plays the shared segment.
     Address 0 is reserved as the null pointer. *)
  let bodies = generate cfg in
  let tape = ref (Array.make (1 lsl 16) 0.0) in
  let used = ref node_words in
  let ensure n =
    if n > Array.length !tape then begin
      let bigger = Array.make (max n (2 * Array.length !tape)) 0.0 in
      Array.blit !tape 0 bigger 0 (Array.length !tape);
      tape := bigger
    end
  in
  let bases = ref [] in
  let mem =
    {
      read = (fun ~node:_ a -> !tape.(a));
      write =
        (fun ~node:_ a v ->
          ensure (a + 1);
          !tape.(a) <- v);
      body_read = (fun ~node:_ b f -> bodies.((b * body_words) + f));
      body_write = (fun ~node:_ b f v -> bodies.((b * body_words) + f) <- v);
      alloc_node =
        (fun ~node:_ ->
          let a = !used in
          used := a + node_words;
          ensure !used;
          bases := a :: !bases;
          a);
      reset_pools =
        (fun () ->
          used := node_words;
          bases := []);
      iter_pool = (fun ~node f -> if node = 0 then List.iter f (List.rev !bases));
      charge = (fun ~node:_ _ -> ());
    }
  in
  (* Bodies must be inserted in the same order as the DSM run: block
     distribution over [nprocs] = ascending body order.  One "processor"
     suffices for the rest. *)
  let d =
    {
      mem;
      nprocs = 1;
      owner = (fun _ -> 0);
      foreach_bodies =
        (fun _ f ->
          for b = 0 to cfg.n_bodies - 1 do
            f ~node:0 b
          done);
      foreach_nodes = (fun _ f -> f ~node:0);
      region = (fun _ f -> f ());
      reduce_max = (fun x -> x);
    }
  in
  simulate cfg d
