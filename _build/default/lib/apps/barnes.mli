(** Barnes: gravitational N-body simulation with an oct-tree (section 5.2).

    Bodies are point masses in the unit box.  Each time step rebuilds an
    oct-tree over the bodies (deeper where bodies are dense), computes
    per-node centers of mass bottom-up, then computes the force on every body
    by a depth-first traversal that approximates sufficiently-distant cells
    by their center of mass (opening angle [theta]), and finally integrates
    positions.

    The phase structure matches the paper's Figure 4 (and the compiled
    skeleton in the test suite): tree build and force computation perform
    unstructured tree accesses (rule 2 directives); the center-of-mass level
    loop is home-dominated and gets a single hoisted directive; the position
    update gets a rule-1 directive.

    Tree nodes live in per-processor pools carved out of the shared segment
    once and reused across time steps, so the rebuilt tree reoccupies the
    same cache blocks and the communication pattern is repetitive with small
    incremental changes — the property the predictive protocol exploits. *)

type config = {
  n_bodies : int;
  iterations : int;
  theta : float;  (** opening angle; larger = cheaper and less accurate *)
  dt : float;
  eps2 : float;  (** softening (squared) *)
  seed : int;
}

val default : config
(** The paper's data set: 16384 bodies, 3 iterations. *)

val small : config
(** Test-sized: 256 bodies, 2 iterations. *)

type stats = {
  checksum : float;  (** sum over bodies of |force| + |position|, last step *)
  tree_nodes : int;  (** internal nodes allocated in the last step *)
  max_depth : int;
}

val run : Ccdsm_runtime.Runtime.t -> config -> stats
val reference : config -> stats
(** Pure sequential implementation with identical arithmetic and traversal
    order: checksums must match {!run} exactly. *)
