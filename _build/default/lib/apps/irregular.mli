(** Irregular gather kernel: predictive protocol vs. inspector-executor.

    The paper's closest related work (section 2) is the CHAOS
    inspector-executor approach: for an indirection-driven parallel loop, an
    {e inspector} scans the index arrays and builds a communication schedule,
    and an {e executor} gathers the remote data before each loop execution.
    The paper claims three advantages for its approach; the measurable one is
    incremental schedules: "the inspector ... must be executed whenever the
    indirection array changes", while the predictive protocol extends its
    schedule through ordinary access faults.

    This kernel makes the comparison concrete: [y.(i) = Σ_k x.(idx.(i).(k))]
    over [k < degree] random neighbours, iterated; every [change_every]
    iterations a fraction [change_fraction] of each element's indices is
    re-randomized.  Strategies:

    - {!run_dsm}: on the DSM under a chosen protocol (the predictive protocol
      tracks the pattern incrementally — stale entries linger, per the
      paper's no-deletion limitation, but new ones need no inspector);
    - {!run_inspector}: message-passing style, bypassing the coherence
      protocol entirely — ghosts are gathered by schedule-driven bulk
      messages, and the inspector re-runs at every pattern change (its cost
      is charged to the presend bucket, as communication preparation).

    All strategies compute identical values (same index streams, same
    arithmetic), so checksums must agree bit-for-bit. *)

type config = {
  n : int;  (** elements *)
  degree : int;  (** indirection arity per element *)
  iterations : int;
  change_every : int;  (** 0 = static pattern *)
  change_fraction : float;  (** share of indices re-randomized per change *)
  seed : int;
}

val default : config
val small : config

type stats = { checksum : float; pattern_changes : int }

val run_dsm :
  ?flush_on_change:bool -> Ccdsm_runtime.Runtime.t -> config -> stats
(** [flush_on_change] additionally flushes the gather phase's schedule at
    every pattern change (rebuild-from-scratch, for comparison). *)

val run_inspector : Ccdsm_runtime.Runtime.t -> config -> stats
(** The runtime is used only for its machine and time accounting; the
    coherence protocol is never invoked. *)

val reference : config -> stats
