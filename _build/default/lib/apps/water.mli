(** Water: molecular dynamics with a spherical cutoff (paper section 5.3).

    Molecules in a periodic unit box interact through a smooth short-range
    pair potential cut off at half the box length.  Each time step advances
    positions (predict), computes inter-molecular forces (the phase with the
    static repetitive producer-consumer pattern: a molecule's position,
    updated in one phase, is read by the other molecules within the cutoff in
    the next), and integrates velocities (correct).

    Both implementations compute each pair once (molecule i with the n/2
    molecules following it, the paper's ordering) and agree on the physics;
    they differ in how the j-side force contribution lands and in layout:

    - {!run}: the C\*\* data-parallel version.  The j-side accumulation uses
      the language's reduction semantics, implemented as per-node Partial
      rows (local writes) gathered by a combine phase — so the memory system
      sees repetitive producer-consumer traffic that the predictive protocol
      pre-sends.  Elements are padded so positions, velocities and forces
      occupy separate 32-byte blocks.  Directives come from compiling
      {!skeleton_src}: the interaction and combine phases by rule 2, predict
      and zero_partials by rule 1; correct gets none.
    - {!run_splash}: the SPLASH-2-flavoured baseline "optimized for
      transparent shared memory": the j-side contribution is accumulated
      in place into the other molecule's force field (per-molecule locks in
      the original) — remote read-modify-writes that a write-invalidate
      protocol turns into migratory block traffic — using the compact
      unpadded layout.  No protocol directives. *)

type config = {
  n_molecules : int;
  iterations : int;
  dt : float;
  cutoff : float;
  eps2 : float;
  seed : int;
}

val default : config
(** The paper's data set: 512 molecules, 20 time steps. *)

val small : config
(** Test-sized: 64 molecules, 5 time steps. *)

type stats = { checksum : float; interactions : int }

val run : Ccdsm_runtime.Runtime.t -> config -> stats
val run_splash : Ccdsm_runtime.Runtime.t -> config -> stats

val reference : ?nodes:int -> config -> stats
(** Sequential reference for {!run} (identical arithmetic order).  [nodes]
    (default 32) must match the simulated machine being compared against —
    the combine phase sums per-node partials, so the floating-point order
    depends on the node count. *)

val reference_splash : ?nodes:int -> config -> stats
(** Sequential reference for {!run_splash} ([nodes] affects only iteration
    grouping, which for this variant is order-equivalent). *)

val skeleton_src : string
(** C\*\* skeleton of the data-parallel version, from which the directive
    placement (interaction phase only) is derived. *)
