module Runtime = Ccdsm_runtime.Runtime

let run rt cfg =
  (match Runtime.protocol rt with
  | Runtime.Write_update -> ()
  | _ -> invalid_arg "Barnes_spmd.run: runtime must use the write-update protocol");
  Barnes.run rt cfg
