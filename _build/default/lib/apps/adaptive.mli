(** Adaptive: structured adaptive mesh relaxation (paper section 5.1).

    Computes electric potentials in a box: a mesh is imposed over the box and
    the potential at each point is the average of its four neighbours
    (red-black Gauss-Seidel).  Where the gradient is steep the cell is
    subdivided into four child cells held in a dynamically-allocated quad
    tree; refined cells additionally update their children by interpolating
    against neighbouring cells (reading the neighbour's children when it is
    refined too).  Refinement decisions run every [refine_every] sweeps, so
    the communication pattern grows incrementally — the case the predictive
    protocol's incremental schedules target.

    The boundary row at the top of the box is held at potential 1, which
    concentrates refinement (and therefore work) near the top of the mesh —
    the load imbalance the paper observes turning into synchronization time.

    The phase structure mirrors what the C\*\* compiler places for the
    equivalent program (see {!skeleton_src} and the tests): the red and black
    sweeps need directives by rule 2 (neighbour reads are non-home), the
    refinement phase by rule 1 (owner writes reached by the sweeps'
    unstructured reads). *)

type config = {
  n : int;  (** mesh is n x n *)
  iterations : int;  (** red-black sweep pairs *)
  refine_every : int;
  refine_threshold : float;  (** gradient magnitude triggering subdivision *)
  max_refined_fraction : float;  (** stop refining past this fraction of cells *)
  seed : int;
}

val default : config
(** The paper's data set: 128 x 128 mesh, 100 iterations. *)

val small : config
(** Test-sized: 32 x 32, 10 iterations. *)

type stats = { checksum : float; refined_cells : int }

val run : ?flush_each_iter:bool -> Ccdsm_runtime.Runtime.t -> config -> stats
(** Execute on the DSM runtime.  The checksum is the total potential over
    root cells plus refined children (comparable with {!reference}).
    [flush_each_iter] (default false) discards all communication schedules at
    the end of every iteration — the "rebuild from scratch" mode that the
    incremental-schedule ablation compares against. *)

val reference : config -> stats
(** Pure sequential implementation (no DSM), for correctness checks. *)

val skeleton_src : string
(** C\*\* skeleton of the application's main loop, used to derive the
    directive placement that [run] applies. *)
