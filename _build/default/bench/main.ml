(* Benchmark harness.

   Running this executable regenerates every table and figure of the paper
   (printed below, at the data-set scale selected by CCDSM_FULL), then times
   the regeneration machinery and the protocol hot paths with Bechamel —
   one Test.make per table/figure plus micro-benchmarks.

   dune exec bench/main.exe *)

open Bechamel
open Toolkit
module E = Ccdsm_harness.Experiments
module Measure_h = Ccdsm_harness.Measure
module Machine = Ccdsm_tempest.Machine
module Runtime = Ccdsm_runtime.Runtime
module Schedule = Ccdsm_core.Schedule
module Predictive = Ccdsm_core.Predictive
module Adaptive = Ccdsm_apps.Adaptive
module Barnes = Ccdsm_apps.Barnes
module Water = Ccdsm_apps.Water
module Cstar = Ccdsm_cstar

(* -- regenerate the paper's tables and figures ------------------------------- *)

let print_figures () =
  let scale = E.scale_of_env () in
  print_endline "==================================================================";
  print_endline "Reproduction of every table and figure (see EXPERIMENTS.md)";
  (match scale with
  | E.Paper -> print_endline "scale: paper data sets (CCDSM_FULL set)"
  | E.Scaled -> print_endline "scale: reduced data sets (set CCDSM_FULL=1 for paper scale)");
  print_endline "==================================================================";
  print_endline "\n== Table 1 ==";
  print_string (E.table1 scale);
  print_endline "\n== Figure 4 ==";
  print_string (E.fig4 ());
  let fig5 = E.fig5 scale in
  print_newline ();
  print_string (E.render fig5);
  let fig6 = E.fig6 scale in
  print_newline ();
  print_string (E.render fig6);
  let fig7 = E.fig7 scale in
  print_newline ();
  print_string (E.render fig7);
  print_newline ();
  print_string (E.block_sweep scale);
  print_newline ();
  print_string (E.ablations scale);
  print_newline ();
  print_string (E.inspector scale);
  print_newline ();
  print_string (E.scaling scale);
  print_endline "\n== shape checks (paper claims) ==";
  let checks = E.check_shapes ~fig5 ~fig6 ~fig7 in
  List.iter
    (fun (claim, ok) -> Printf.printf "  [%s] %s\n" (if ok then "ok" else "MISS") claim)
    checks;
  print_newline ()

(* -- Bechamel tests ------------------------------------------------------------ *)

(* Tiny configurations so each timed sample stays in the milliseconds. *)
let tiny_adaptive = { Adaptive.small with Adaptive.n = 32; iterations = 4 }
let tiny_barnes = { Barnes.small with Barnes.n_bodies = 512; iterations = 1 }
let tiny_water = { Water.small with Water.n_molecules = 64; iterations = 2 }

let small_machine () = Machine.default_config ~num_nodes:8 ~block_bytes:32 ()

let bench_version protocol run =
  Measure_h.measure ~num_nodes:8 (Measure_h.version ~label:"bench" ~protocol ~block_bytes:32 run)

let test_table1 =
  Test.make ~name:"table1" (Staged.stage (fun () -> Sys.opaque_identity (E.table1 E.Scaled)))

let test_fig4 =
  Test.make ~name:"fig4-compiler-report" (Staged.stage (fun () -> Sys.opaque_identity (E.fig4 ())))

let test_fig5 =
  Test.make ~name:"fig5-adaptive"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (bench_version Runtime.Predictive (fun rt ->
                (Adaptive.run rt tiny_adaptive).Adaptive.checksum))))

let test_fig6 =
  Test.make ~name:"fig6-barnes"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (bench_version Runtime.Predictive (fun rt ->
                (Barnes.run rt tiny_barnes).Barnes.checksum))))

let test_fig7 =
  Test.make ~name:"fig7-water"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (bench_version Runtime.Predictive (fun rt ->
                (Water.run rt tiny_water).Water.checksum))))

let test_sweep_point =
  Test.make ~name:"sweep-point-unopt"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (bench_version Runtime.Stache (fun rt ->
                (Water.run rt tiny_water).Water.checksum))))

let test_ablation_point =
  Test.make ~name:"ablation-no-coalesce"
    (Staged.stage (fun () ->
         let v =
           Measure_h.version ~label:"bench" ~protocol:Runtime.Predictive ~block_bytes:32
             ~coalesce:false (fun rt -> (Water.run rt tiny_water).Water.checksum)
         in
         Sys.opaque_identity (Measure_h.measure ~num_nodes:8 v)))

(* Micro-benchmarks of the protocol and compiler hot paths. *)

let test_demand_miss =
  Test.make ~name:"micro-stache-demand-miss"
    (Staged.stage
       (let m = Machine.create (small_machine ()) in
        let _ = Ccdsm_proto.Engine.stache m in
        let a = Machine.alloc m ~words:4 ~home:0 in
        let turn = ref 0 in
        fun () ->
          (* Alternate writer/readers so every access faults. *)
          turn := (!turn + 1) land 3;
          if !turn = 0 then Machine.write m ~node:1 a 1.0
          else ignore (Sys.opaque_identity (Machine.read m ~node:(2 + (!turn land 1)) a))))

let test_local_hit =
  Test.make ~name:"micro-local-hit"
    (Staged.stage
       (let m = Machine.create (small_machine ()) in
        let _ = Ccdsm_proto.Engine.stache m in
        let a = Machine.alloc m ~words:4 ~home:0 in
        fun () -> ignore (Sys.opaque_identity (Machine.read m ~node:0 a))))

let test_schedule_record =
  Test.make ~name:"micro-schedule-record"
    (Staged.stage
       (let s = Schedule.create () in
        let i = ref 0 in
        fun () ->
          incr i;
          Schedule.record_read s (!i land 1023) ~reader:(!i land 7)))

let test_presend =
  Test.make ~name:"micro-presend-1k-blocks"
    (Staged.stage
       (let m = Machine.create (small_machine ()) in
        let p = Predictive.create m in
        let coh = Predictive.coherence p in
        let a = Machine.alloc m ~words:4096 ~home:0 in
        (* Build a 1024-block schedule once. *)
        coh.Ccdsm_proto.Coherence.phase_begin ~phase:0;
        for b = 0 to 1023 do
          ignore (Machine.read m ~node:1 (a + (b * 4)))
        done;
        coh.Ccdsm_proto.Coherence.phase_end ~phase:0;
        fun () ->
          coh.Ccdsm_proto.Coherence.phase_begin ~phase:0;
          coh.Ccdsm_proto.Coherence.phase_end ~phase:0))

let test_dataflow =
  Test.make ~name:"micro-dataflow-solve"
    (Staged.stage
       (let c = Cstar.Compile.compile_exn Ccdsm_apps.Water.skeleton_src in
        let sema = c.Cstar.Compile.sema in
        fun () ->
          Sys.opaque_identity
            (Cstar.Reaching.analyze sema sema.Cstar.Sema.prog.Cstar.Ast.main)))

let test_compile =
  Test.make ~name:"micro-compile-adaptive-skeleton"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Cstar.Compile.compile_exn Ccdsm_apps.Adaptive.skeleton_src)))

let test_bulk_runs =
  Test.make ~name:"micro-bulk-runs"
    (Staged.stage
       (let blocks = List.init 256 (fun i -> (i * 7) mod 512) in
        fun () -> Sys.opaque_identity (Ccdsm_proto.Bulk.runs blocks)))

let tests =
  Test.make_grouped ~name:"ccdsm"
    [
      test_table1;
      test_fig4;
      test_fig5;
      test_fig6;
      test_fig7;
      test_sweep_point;
      test_ablation_point;
      test_demand_miss;
      test_local_hit;
      test_schedule_record;
      test_presend;
      test_dataflow;
      test_compile;
      test_bulk_runs;
    ]

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "== Bechamel timings (host time per regeneration/operation) ==";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
            else Printf.sprintf "%8.2f ns" est
          in
          Printf.printf "  %-36s %s/run\n" name pretty
      | _ -> Printf.printf "  %-36s (no estimate)\n" name)
    (List.sort compare rows)

let () =
  print_figures ();
  run_benchmarks ()
