(* repro: regenerate the paper's tables and figures.

   Examples:
     repro table1
     repro fig5 --full          # paper-scale data set
     repro fig6 --nodes 16
     repro all                  # everything, plus the shape checklist *)

open Cmdliner
module E = Ccdsm_harness.Experiments

let scale full = if full then E.Paper else E.scale_of_env ()

let full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"Use the paper's data-set sizes (Table 1).")

let nodes_arg =
  Arg.(
    value
    & opt int 32
    & info [ "nodes" ] ~docv:"N" ~doc:"Number of simulated processors (the paper uses 32).")

let print_figure fig =
  print_string (E.render fig);
  print_newline ()

let run_table1 full = print_string (E.table1 (scale full))
let run_fig4 () = print_string (E.fig4 ())
let run_fig5 full nodes = print_figure (E.fig5 ~num_nodes:nodes (scale full))
let run_fig6 full nodes = print_figure (E.fig6 ~num_nodes:nodes (scale full))
let run_fig7 full nodes = print_figure (E.fig7 ~num_nodes:nodes (scale full))
let run_sweep full nodes = print_string (E.block_sweep ~num_nodes:nodes (scale full))
let run_ablate full nodes = print_string (E.ablations ~num_nodes:nodes (scale full))
let run_scaling full = print_string (E.scaling (scale full))
let run_inspector full = print_string (E.inspector (scale full))

let run_all full nodes =
  let s = scale full in
  print_endline "== Table 1 ==";
  print_string (E.table1 s);
  print_newline ();
  print_endline "== Figure 4 ==";
  print_string (E.fig4 ());
  print_newline ();
  let fig5 = E.fig5 ~num_nodes:nodes s in
  print_figure fig5;
  let fig6 = E.fig6 ~num_nodes:nodes s in
  print_figure fig6;
  let fig7 = E.fig7 ~num_nodes:nodes s in
  print_figure fig7;
  print_string (E.block_sweep ~num_nodes:nodes s);
  print_newline ();
  print_string (E.ablations ~num_nodes:nodes s);
  print_newline ();
  print_string (E.scaling s);
  print_newline ();
  print_string (E.inspector s);
  print_newline ();
  print_endline "== shape checks (paper claims) ==";
  let checks = E.check_shapes ~fig5 ~fig6 ~fig7 in
  List.iter
    (fun (claim, ok) -> Printf.printf "  [%s] %s\n" (if ok then "ok" else "MISS") claim)
    checks;
  if List.for_all snd checks then print_endline "all shape checks hold"
  else print_endline "some shape checks missed (see above)"

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let cmds =
  [
    cmd "table1" "Print Table 1 (benchmark descriptions)" Term.(const run_table1 $ full_arg);
    cmd "fig4" "Compiler report for the Barnes-Hut skeleton (Figure 4)"
      Term.(const run_fig4 $ const ());
    cmd "fig5" "Adaptive execution-time breakdown (Figure 5)"
      Term.(const run_fig5 $ full_arg $ nodes_arg);
    cmd "fig6" "Barnes execution-time breakdown (Figure 6)"
      Term.(const run_fig6 $ full_arg $ nodes_arg);
    cmd "fig7" "Water execution-time breakdown (Figure 7)"
      Term.(const run_fig7 $ full_arg $ nodes_arg);
    cmd "sweep" "Block-size sensitivity sweep (section 5.4)"
      Term.(const run_sweep $ full_arg $ nodes_arg);
    cmd "ablate" "Design ablations (coalescing, incremental schedules, interconnect)"
      Term.(const run_ablate $ full_arg $ nodes_arg);
    cmd "scaling" "Node-count scaling (extension)" Term.(const run_scaling $ full_arg);
    cmd "inspector" "Inspector-executor comparison (section 2)"
      Term.(const run_inspector $ full_arg);
    cmd "all" "Everything, plus the qualitative shape checklist"
      Term.(const run_all $ full_arg $ nodes_arg);
  ]

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:"Reproduce the evaluation of 'Compiler-directed Shared-Memory Communication'"
  in
  exit (Cmd.eval (Cmd.group info cmds))
