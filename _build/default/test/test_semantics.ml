(* Language-semantics tests for the C** interpreter: operators, control
   flow, intrinsics, scoping — each checked by executing a small program and
   peeking at aggregate contents. *)

open Ccdsm_cstar
module Machine = Ccdsm_tempest.Machine
module Runtime = Ccdsm_runtime.Runtime
module Aggregate = Ccdsm_runtime.Aggregate

let check = Alcotest.check

(* Run a single parallel function over A[4] and return element 0. *)
let eval_body body =
  let src =
    Printf.sprintf "aggregate A[4]; aggregate B[4]; parallel void f(parallel A a, B b) { %s } void main() { f(); }"
      body
  in
  let rt =
    Runtime.create ~cfg:(Machine.default_config ~num_nodes:2 ~block_bytes:32 ()) ~protocol:Runtime.Stache ()
  in
  let env = Interp.load rt (Compile.compile_exn src) in
  Interp.run env;
  Aggregate.peek1 (Interp.aggregate env "A") 0 ~field:0

let expr e = eval_body (Printf.sprintf "a[#0] = %s;" e)

let test_arithmetic () =
  check (Alcotest.float 1e-12) "precedence" 7.0 (expr "1 + 2 * 3");
  check (Alcotest.float 1e-12) "sub assoc" (-4.0) (expr "1 - 2 - 3");
  check (Alcotest.float 1e-12) "division" 2.5 (expr "5 / 2");
  check (Alcotest.float 1e-12) "modulo" 1.0 (expr "7 % 3");
  check (Alcotest.float 1e-12) "negation" (-3.0) (expr "-(1 + 2)");
  check (Alcotest.float 1e-12) "nested parens" 9.0 (expr "(1 + 2) * (4 - 1)")

let test_comparisons () =
  check (Alcotest.float 0.0) "lt true" 1.0 (expr "1 < 2");
  check (Alcotest.float 0.0) "lt false" 0.0 (expr "2 < 1");
  check (Alcotest.float 0.0) "le" 1.0 (expr "2 <= 2");
  check (Alcotest.float 0.0) "gt" 1.0 (expr "3 > 2");
  check (Alcotest.float 0.0) "ge false" 0.0 (expr "1 >= 2");
  check (Alcotest.float 0.0) "eq" 1.0 (expr "2 == 2");
  check (Alcotest.float 0.0) "ne" 1.0 (expr "2 != 3")

let test_logical () =
  check (Alcotest.float 0.0) "and" 1.0 (expr "1 && 2");
  check (Alcotest.float 0.0) "and false" 0.0 (expr "1 && 0");
  check (Alcotest.float 0.0) "or" 1.0 (expr "0 || 3");
  check (Alcotest.float 0.0) "or false" 0.0 (expr "0 || 0");
  check (Alcotest.float 0.0) "not" 1.0 (expr "!0");
  check (Alcotest.float 0.0) "not truthy" 0.0 (expr "!2.5");
  (* Short-circuit: the right side would be out of bounds. *)
  check (Alcotest.float 0.0) "and short-circuits" 0.0 (expr "0 && b[9]");
  check (Alcotest.float 0.0) "or short-circuits" 1.0 (expr "1 || b[9]")

let test_intrinsics () =
  check (Alcotest.float 1e-12) "sqrt" 3.0 (expr "sqrt(9)");
  check (Alcotest.float 1e-12) "abs" 2.0 (expr "abs(0 - 2)");
  check (Alcotest.float 1e-12) "floor" 2.0 (expr "floor(2.9)");
  check (Alcotest.float 1e-12) "min" 1.0 (expr "min(1, 2)");
  check (Alcotest.float 1e-12) "max" 2.0 (expr "max(1, 2)");
  let n1 = expr "noise(3, 4)" and n2 = expr "noise(3, 4)" in
  check (Alcotest.float 0.0) "noise deterministic" n1 n2;
  Alcotest.(check bool) "noise in [0,1)" true (n1 >= 0.0 && n1 < 1.0);
  Alcotest.(check bool) "noise varies" true (expr "noise(3, 4)" <> expr "noise(4, 3)")

let test_control_flow_in_pfun () =
  check (Alcotest.float 0.0) "if taken" 5.0 (eval_body "if (#0 == 0) { a[#0] = 5; } else { a[#0] = 6; }");
  check (Alcotest.float 0.0) "while accumulates" 10.0
    (eval_body "let s = 0; let i = 0; while (i < 4) { s = s + i; i = i + 1; } a[#0] = s + 4;");
  check (Alcotest.float 0.0) "for accumulates" 6.0
    (eval_body "let s = 0; let i = 0; for (i = 0; i < 4; i = i + 1) { s = s + i; } a[#0] = s;");
  check (Alcotest.float 0.0) "nested loops" 16.0
    (eval_body
       "let s = 0; let i = 0; let j = 0; for (i = 0; i < 4; i = i + 1) { for (j = 0; j < 4; j = j + 1) { s = s + 1; } } a[#0] = s;")

let test_let_scoping () =
  check (Alcotest.float 0.0) "let then use" 3.0 (eval_body "let x = 1; let y = x + 2; a[#0] = y;");
  check (Alcotest.float 0.0) "assignment" 2.0 (eval_body "let x = 1; x = x + 1; a[#0] = x;")

let test_main_control_flow () =
  let src =
    {|
    aggregate A[4];
    parallel void inc(parallel A a) { a[#0] = a[#0] + 1; }
    void main() {
      let n = 0;
      if (1 < 2) { n = 3; } else { n = 100; }
      let i = 0;
      while (i < n) {
        inc();
        i = i + 1;
      }
    }
    |}
  in
  let rt =
    Runtime.create ~cfg:(Machine.default_config ~num_nodes:2 ~block_bytes:32 ()) ~protocol:Runtime.Stache ()
  in
  let env = Interp.load rt (Compile.compile_exn src) in
  Interp.run env;
  check (Alcotest.float 0.0) "main if/while drive calls" 3.0
    (Aggregate.peek1 (Interp.aggregate env "A") 2 ~field:0)

let test_fields_and_2d () =
  let src =
    {|
    aggregate G[3][5] { v, w };
    parallel void f(parallel G g) {
      g[#0][#1].v = #0 * 10 + #1;
      g[#0][#1].w = g[#0][#1].v * 2;
    }
    void main() { f(); }
    |}
  in
  let rt =
    Runtime.create ~cfg:(Machine.default_config ~num_nodes:2 ~block_bytes:32 ()) ~protocol:Runtime.Stache ()
  in
  let env = Interp.load rt (Compile.compile_exn src) in
  Interp.run env;
  let g = Interp.aggregate env "G" in
  check (Alcotest.float 0.0) "positions" 23.0 (Aggregate.peek2 g 2 3 ~field:0);
  check (Alcotest.float 0.0) "field chain" 46.0 (Aggregate.peek2 g 2 3 ~field:1)

let test_run_pfun_directly () =
  let src =
    "aggregate A[4]; parallel void f(parallel A a) { a[#0] = 2; } void main() { }"
  in
  let rt =
    Runtime.create ~cfg:(Machine.default_config ~num_nodes:2 ~block_bytes:32 ()) ~protocol:Runtime.Stache ()
  in
  let env = Interp.load rt (Compile.compile_exn src) in
  Interp.run_pfun env "f";
  check (Alcotest.float 0.0) "host-driven call" 2.0
    (Aggregate.peek1 (Interp.aggregate env "A") 1 ~field:0);
  Alcotest.(check bool) "unknown pfun raises" true
    (try
       Interp.run_pfun env "nope";
       false
     with Interp.Runtime_error _ -> true)

let test_distributions_in_language () =
  (* Declared distributions reach the runtime: cyclic 1-D and tiled 2-D. *)
  let src =
    {|
    aggregate C[8] dist cyclic;
    aggregate T[4][4] dist tiled(2, 1);
    parallel void fc(parallel C c) { c[#0] = #0; }
    parallel void ft(parallel T t) { t[#0][#1] = #0 + #1; }
    void main() { fc(); ft(); }
    |}
  in
  let rt =
    Runtime.create ~cfg:(Machine.default_config ~num_nodes:2 ~block_bytes:32 ()) ~protocol:Runtime.Stache ()
  in
  let env = Interp.load rt (Compile.compile_exn src) in
  Interp.run env;
  let c = Interp.aggregate env "C" in
  check Alcotest.int "cyclic owner" 1 (Aggregate.owner1 c 3);
  check (Alcotest.float 0.0) "cyclic values" 3.0 (Aggregate.peek1 c 3 ~field:0);
  let t = Interp.aggregate env "T" in
  check Alcotest.int "tiled owner" 1 (Aggregate.owner2 t 3 0);
  check (Alcotest.float 0.0) "tiled values" 5.0 (Aggregate.peek2 t 3 2 ~field:0)

let test_tiled_mismatch_rejected () =
  let src =
    "aggregate T[4][4] dist tiled(3, 1); parallel void f(parallel T t) { t[#0][#1] = 1; } void main() { f(); }"
  in
  let rt =
    Runtime.create ~cfg:(Machine.default_config ~num_nodes:2 ~block_bytes:32 ()) ~protocol:Runtime.Stache ()
  in
  Alcotest.(check bool) "grid/node mismatch raises Runtime_error" true
    (try
       ignore (Interp.load rt (Compile.compile_exn src));
       false
     with Interp.Runtime_error _ -> true)

let suite =
  [
    ( "cstar.semantics",
      [
        Alcotest.test_case "arithmetic" `Quick test_arithmetic;
        Alcotest.test_case "comparisons" `Quick test_comparisons;
        Alcotest.test_case "logical + short-circuit" `Quick test_logical;
        Alcotest.test_case "intrinsics" `Quick test_intrinsics;
        Alcotest.test_case "control flow in functions" `Quick test_control_flow_in_pfun;
        Alcotest.test_case "let scoping" `Quick test_let_scoping;
        Alcotest.test_case "control flow in main" `Quick test_main_control_flow;
        Alcotest.test_case "fields and 2-D positions" `Quick test_fields_and_2d;
        Alcotest.test_case "host-driven pfun" `Quick test_run_pfun_directly;
        Alcotest.test_case "declared distributions" `Quick test_distributions_in_language;
        Alcotest.test_case "tiled mismatch rejected" `Quick test_tiled_mismatch_rejected;
      ] );
  ]
