test/test_proto.ml: Alcotest Array Ccdsm_proto Ccdsm_tempest Ccdsm_util List Nodeset Printf Prng QCheck2 QCheck_alcotest
