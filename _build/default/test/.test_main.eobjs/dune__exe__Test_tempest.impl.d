test/test_tempest.ml: Alcotest Ccdsm_tempest List Printf
