test/test_harness.ml: Alcotest Array Ccdsm_apps Ccdsm_harness Ccdsm_runtime Ccdsm_tempest List String Sys
