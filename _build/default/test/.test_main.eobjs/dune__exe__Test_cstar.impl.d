test/test_cstar.ml: Access Alcotest Array Ast Ccdsm_cstar Ccdsm_runtime Ccdsm_tempest Cfg Compile Dataflow Format Interp Lexer List Parser Placement Printf Reaching Sema String
