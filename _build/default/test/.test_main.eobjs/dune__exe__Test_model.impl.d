test/test_model.ml: Alcotest Array Buffer Ccdsm_core Ccdsm_proto Ccdsm_tempest Ccdsm_util Format Fun Hashtbl List Nodeset Printf Queue String
