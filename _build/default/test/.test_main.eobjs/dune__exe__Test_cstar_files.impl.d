test/test_cstar_files.ml: Alcotest Ast Ccdsm_cstar Ccdsm_runtime Ccdsm_tempest Compile Filename Float Fun Interp List Placement Printf Sema String
