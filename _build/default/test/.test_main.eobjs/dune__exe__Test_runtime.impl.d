test/test_runtime.ml: Alcotest Array Ccdsm_core Ccdsm_proto Ccdsm_runtime Ccdsm_tempest Hashtbl List Option Printf QCheck2 QCheck_alcotest Result
