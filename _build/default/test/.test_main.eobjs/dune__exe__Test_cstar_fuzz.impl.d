test/test_cstar_fuzz.ml: Ast Ccdsm_cstar Ccdsm_runtime Ccdsm_tempest Compile Float Format Fun Int64 Interp List Option Placement Printf QCheck2 QCheck_alcotest Sema String
