test/test_util.ml: Alcotest Array Ascii Bitvec Ccdsm_util Float List Nodeset Prng QCheck2 QCheck_alcotest Stats String Vec3
