test/test_core.ml: Alcotest Ccdsm_core Ccdsm_proto Ccdsm_tempest Ccdsm_util List Nodeset Printf QCheck2 QCheck_alcotest
