test/test_apps.ml: Alcotest Ccdsm_apps Ccdsm_cstar Ccdsm_proto Ccdsm_runtime Ccdsm_tempest Float List Printf
