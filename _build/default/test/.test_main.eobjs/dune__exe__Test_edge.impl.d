test/test_edge.ml: Alcotest Ccdsm_apps Ccdsm_core Ccdsm_proto Ccdsm_runtime Ccdsm_tempest List Printf
