test/test_semantics.ml: Alcotest Ccdsm_cstar Ccdsm_runtime Ccdsm_tempest Compile Interp Printf
