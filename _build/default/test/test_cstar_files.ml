(* The shipped .cstar example programs (the paper's Figures 2-4 plus a
   migratory pattern) must compile, place the expected directives, and
   compute identical values under every protocol. *)

open Ccdsm_cstar
module Machine = Ccdsm_tempest.Machine
module Runtime = Ccdsm_runtime.Runtime
module Aggregate = Ccdsm_runtime.Aggregate

let check = Alcotest.check

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load name = read_file (Filename.concat "../examples/cstar" (name ^ ".cstar"))

let compile name =
  match Compile.compile (load name) with
  | Ok c -> c
  | Error errs -> Alcotest.failf "%s does not compile: %s" name (String.concat "; " errs)

(* Execute a compiled program and take a checksum over every aggregate. *)
let execute compiled protocol =
  let rt =
    Runtime.create ~cfg:(Machine.default_config ~num_nodes:8 ~block_bytes:32 ()) ~protocol ()
  in
  let env = Interp.load rt compiled in
  Interp.run env;
  let sum = ref 0.0 in
  List.iter
    (fun (decl : Ast.agg_decl) ->
      let agg = Interp.aggregate env decl.Ast.agg_name in
      let words = max 1 (List.length decl.Ast.agg_fields) in
      match decl.Ast.agg_dims with
      | [ n ] ->
          for i = 0 to n - 1 do
            for f = 0 to words - 1 do
              sum := !sum +. Aggregate.peek1 agg i ~field:f
            done
          done
      | [ rows; cols ] ->
          for i = 0 to rows - 1 do
            for j = 0 to cols - 1 do
              for f = 0 to words - 1 do
                sum := !sum +. Aggregate.peek2 agg i j ~field:f
              done
            done
          done
      | _ -> assert false)
    compiled.Compile.sema.Sema.prog.Ast.aggs;
  let c = Machine.total_counters (Runtime.machine rt) in
  (!sum, c.Machine.read_faults + c.Machine.write_faults)

let test_compiles_and_protocols_agree name () =
  let compiled = compile name in
  let sum_s, faults_s = execute compiled Runtime.Stache in
  let sum_p, faults_p = execute compiled Runtime.Predictive in
  check (Alcotest.float 0.0) "protocols agree on values" sum_s sum_p;
  Alcotest.(check bool) "values non-trivial" true (Float.abs sum_s > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "predictive does not fault more (%d <= %d)" faults_p faults_s)
    true (faults_p <= faults_s)

let test_jacobi_placement () =
  let p = (compile "jacobi").Compile.placement in
  check Alcotest.int "two phases" 2 p.Placement.num_phases;
  let init = List.nth p.Placement.decisions 0 in
  Alcotest.(check bool) "init needs nothing" true (init.Placement.phase = None)

let test_unstructured_mesh_placement () =
  (* Figure 3: both update functions are indirection-driven (rule 2); the
     init functions are home-only writes never reached by anything that
     matters before them. *)
  let p = (compile "unstructured_mesh").Compile.placement in
  let by_func f = List.find (fun d -> d.Placement.func = f) p.Placement.decisions in
  (match (by_func "update_primal").Placement.reason with
  | Placement.Has_unstructured -> ()
  | _ -> Alcotest.fail "update_primal needs a rule-2 directive");
  (match (by_func "update_dual").Placement.reason with
  | Placement.Has_unstructured -> ()
  | _ -> Alcotest.fail "update_dual needs a rule-2 directive");
  Alcotest.(check bool) "init_primal unphased" true
    ((by_func "init_primal").Placement.phase = None)

let test_barnes_skeleton_placement () =
  let p = (compile "barnes_skeleton").Compile.placement in
  check Alcotest.int "four phases (paper figure 4)" 4 p.Placement.num_phases;
  let com = List.find (fun d -> d.Placement.func = "center_of_mass") p.Placement.decisions in
  Alcotest.(check bool) "center_of_mass hoisted" true com.Placement.hoisted

let test_migratory_repetition () =
  (* The migratory control block is written by a rotating owner; the
     predictive protocol's Writer marks follow the last writer, which is
     wrong every iteration here (the pattern rotates), so the program mostly
     tests that mispredicted schedules stay correct. *)
  let compiled = compile "migratory" in
  let sum_s, _ = execute compiled Runtime.Stache in
  let sum_p, _ = execute compiled Runtime.Predictive in
  check (Alcotest.float 0.0) "misprediction is harmless" sum_s sum_p

let names = [ "jacobi"; "unstructured_mesh"; "barnes_skeleton"; "migratory" ]

let suite =
  [
    ( "cstar.files",
      List.map
        (fun n ->
          Alcotest.test_case (n ^ " compiles, protocols agree") `Quick
            (test_compiles_and_protocols_agree n))
        names
      @ [
          Alcotest.test_case "jacobi placement" `Quick test_jacobi_placement;
          Alcotest.test_case "unstructured mesh placement (fig 3)" `Quick
            test_unstructured_mesh_placement;
          Alcotest.test_case "barnes skeleton placement (fig 4)" `Quick
            test_barnes_skeleton_placement;
          Alcotest.test_case "migratory misprediction harmless" `Quick test_migratory_repetition;
        ] );
  ]
