(* Tests for the C** compiler: lexer, parser, sema, access analysis, CFG,
   data-flow, directive placement (the paper's Figure 4) and end-to-end
   execution on the DSM runtime. *)

open Ccdsm_cstar
module Machine = Ccdsm_tempest.Machine
module Runtime = Ccdsm_runtime.Runtime
module Aggregate = Ccdsm_runtime.Aggregate

let check = Alcotest.check

(* -- sources --------------------------------------------------------------- *)

let stencil_src =
  {|
  // 4-point stencil with double buffering (paper Figure 2 flavour).
  aggregate Grid[8][8];
  aggregate Old[8][8];

  parallel void init(parallel Old o) {
    o[#0][#1] = noise(#0, #1);
  }

  parallel void smooth(parallel Grid g, Old o) {
    g[#0][#1] = 0.25 * (o[max(#0 - 1, 0)][#1] + o[min(#0 + 1, 7)][#1]
              + o[#0][max(#1 - 1, 0)] + o[#0][min(#1 + 1, 7)]);
  }

  parallel void copyback(parallel Old o, Grid g) {
    o[#0][#1] = g[#0][#1];
  }

  void main() {
    init();
    let t = 0;
    for (t = 0; t < 10; t = t + 1) {
      smooth();
      copyback();
    }
  }
  |}

(* The paper's Figure 4: the Barnes-Hut main loop.  make_tree writes the tree
   unstructured; center_of_mass touches only its own tree element (and runs
   in a loop); forces reads tree and other bodies unstructured and writes its
   own body; update touches only its own body. *)
let barnes_skeleton_src =
  {|
  aggregate Bodies[256] { mass, px, pf };
  aggregate Tree[512] { m, c };

  parallel void make_tree(parallel Bodies b, Tree t) {
    t[floor(b[#0].px * 511)].c = b[#0].mass;
  }

  parallel void center_of_mass(parallel Tree t) {
    t[#0].m = t[#0].m + t[#0].c;
  }

  parallel void forces(parallel Bodies b, Tree t) {
    let f = t[floor(b[#0].px * 511)].m;
    let g = b[floor(noise(#0, 1) * 255)].px;
    b[#0].pf = f + g;
  }

  parallel void update(parallel Bodies b) {
    b[#0].px = b[#0].px + 0.0001 * b[#0].pf;
    if (b[#0].px > 1) { b[#0].px = b[#0].px - 1; }
  }

  void main() {
    let i = 0;
    for (i = 0; i < 3; i = i + 1) {
      make_tree();
      let k = 0;
      while (k < 4) {
        center_of_mass();
        k = k + 1;
      }
      forces();
      update();
    }
  }
  |}

let compile_ok src =
  match Compile.compile src with
  | Ok c -> c
  | Error errs -> Alcotest.failf "unexpected compile errors: %s" (String.concat "; " errs)

let compile_err src =
  match Compile.compile src with
  | Ok _ -> Alcotest.fail "expected compile error"
  | Error errs -> errs

(* -- lexer ----------------------------------------------------------------- *)

let toks src = List.map (fun s -> s.Lexer.tok) (Lexer.tokenize src)

let test_lexer_basics () =
  check Alcotest.int "token count" 7 (List.length (toks "a = #0 + 1.5;"));
  (match toks "#12" with
  | [ Lexer.HASH 12; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "hash token");
  (match toks "x // comment\ny" with
  | [ Lexer.IDENT "x"; Lexer.IDENT "y"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "line comment");
  match toks "x /* a\nb */ y" with
  | [ Lexer.IDENT "x"; Lexer.IDENT "y"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "block comment"

let test_lexer_operators () =
  match toks "<= >= == != && || < >" with
  | [ Lexer.LE; Lexer.GE; Lexer.EQEQ; Lexer.NE; Lexer.ANDAND; Lexer.OROR; Lexer.LT; Lexer.GT; Lexer.EOF ]
    -> ()
  | _ -> Alcotest.fail "operators"

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Lexer.tokenize "a $ b");
       false
     with Lexer.Error msg -> String.length msg > 0);
  Alcotest.(check bool) "unterminated comment" true
    (try
       ignore (Lexer.tokenize "/* oops");
       false
     with Lexer.Error _ -> true);
  Alcotest.(check bool) "hash without digit" true
    (try
       ignore (Lexer.tokenize "#x");
       false
     with Lexer.Error _ -> true)

let test_lexer_positions () =
  let spans = Lexer.tokenize "x\n  y" in
  let y = List.nth spans 1 in
  check Alcotest.int "line" 2 y.Lexer.line;
  check Alcotest.int "col" 3 y.Lexer.col

(* -- parser ---------------------------------------------------------------- *)

let test_parser_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3 < 4 && 5 + 6 == 11" in
  let s = Format.asprintf "%a" Ast.pp_expr e in
  check Alcotest.string "precedence" "(((1 + (2 * 3)) < 4) && ((5 + 6) == 11))" s

let test_parser_unary_and_assoc () =
  let s e = Format.asprintf "%a" Ast.pp_expr (Parser.parse_expr e) in
  check Alcotest.string "unary binds tight" "((-1) + 2)" (s "-1 + 2");
  check Alcotest.string "left assoc" "((1 - 2) - 3)" (s "1 - 2 - 3");
  check Alcotest.string "parens" "(2 * (1 + 3))" (s "2 * (1 + 3)")

let test_parser_program_roundtrip () =
  let c = compile_ok stencil_src in
  let printed = Format.asprintf "%a" Ast.pp_program c.Compile.sema.Sema.prog in
  (* The pretty-printed program must itself parse and check. *)
  let c2 = compile_ok printed in
  check Alcotest.int "same function count"
    (List.length c.Compile.sema.Sema.prog.Ast.pfuns)
    (List.length c2.Compile.sema.Sema.prog.Ast.pfuns)

let test_parser_errors () =
  let has_err src =
    match Compile.compile src with
    | Error (e :: _) -> String.length e > 0
    | _ -> false
  in
  Alcotest.(check bool) "missing main" true (has_err "aggregate A[4];");
  Alcotest.(check bool) "missing semi" true (has_err "aggregate A[4] void main() {}");
  Alcotest.(check bool) "3-D aggregate" true (has_err "aggregate A[2][2][2]; void main() {}")

(* -- sema ------------------------------------------------------------------ *)

let test_sema_errors () =
  let expect_err frag src =
    let errs = compile_err src in
    Alcotest.(check bool)
      (Printf.sprintf "error mentioning %S (got: %s)" frag (String.concat "; " errs))
      true
      (List.exists
         (fun e ->
           let rec contains i =
             i + String.length frag <= String.length e
             && (String.sub e i (String.length frag) = frag || contains (i + 1))
           in
           contains 0)
         errs)
  in
  expect_err "unknown aggregate"
    "parallel void f(parallel Nope n) { n[#0] = 1; } void main() { f(); }";
  expect_err "no parallel parameter"
    "aggregate A[4]; parallel void f(A a) { a[#0] = 1; } void main() { f(); }";
  expect_err "out of rank"
    "aggregate A[4]; parallel void f(parallel A a) { a[#1] = 1; } void main() { f(); }";
  expect_err "rank is 1"
    "aggregate A[4]; parallel void f(parallel A a) { a[#0][#0] = 1; } void main() { f(); }";
  expect_err "no field"
    "aggregate A[4] { x }; parallel void f(parallel A a) { a[#0].y = 1; } void main() { f(); }";
  expect_err "requires a field"
    "aggregate A[4] { x, y }; parallel void f(parallel A a) { a[#0] = 1; } void main() { f(); }";
  expect_err "unbound variable"
    "aggregate A[4]; parallel void f(parallel A a) { a[#0] = zz; } void main() { f(); }";
  expect_err "unknown parallel function" "aggregate A[4]; void main() { g(); }";
  expect_err "direct aggregate"
    "aggregate A[4]; parallel void f(parallel A a) { a[#0] = 1; } void main() { A[0] = 1; }";
  expect_err "position"
    "aggregate A[4]; parallel void f(parallel A a) { a[#0] = 1; } void main() { let x = #0; }";
  expect_err "duplicate aggregate" "aggregate A[4]; aggregate A[5]; void main() {}";
  expect_err "intrinsic min expects 2"
    "aggregate A[4]; parallel void f(parallel A a) { a[#0] = min(1); } void main() { f(); }"

let test_sema_alias_resolution () =
  let c =
    compile_ok
      "aggregate Data[8]; parallel void f(parallel Data d) { d[#0] = d[#0] + 1; } void main() { f(); }"
  in
  let f = c.Compile.sema.Sema.pfun_of_name "f" in
  (* The alias d must have been rewritten to the aggregate name. *)
  match f.Ast.pf_body with
  | [ Ast.Sstore ({ Ast.acc_agg = "Data"; _ }, _) ] -> ()
  | _ -> Alcotest.fail "alias not resolved"

(* -- access analysis ------------------------------------------------------- *)

let summaries_of src =
  let c = compile_ok src in
  (c, c.Compile.summaries)

let entry_mem s agg dir loc =
  List.mem { Access.agg; dir; loc } s

let test_access_stencil () =
  let _, summaries = summaries_of stencil_src in
  let init = List.assoc "init" summaries in
  Alcotest.(check bool) "init home write" true
    (entry_mem init "Old" Access.Write Access.Home);
  check Alcotest.int "init single entry" 1 (List.length init);
  let smooth = List.assoc "smooth" summaries in
  Alcotest.(check bool) "smooth home write Grid" true
    (entry_mem smooth "Grid" Access.Write Access.Home);
  Alcotest.(check bool) "smooth non-home read Old" true
    (entry_mem smooth "Old" Access.Read Access.Non_home);
  Alcotest.(check bool) "smooth not home-only" false (Access.home_only smooth);
  let copyback = List.assoc "copyback" summaries in
  Alcotest.(check bool) "copyback aligned read is Home" true
    (entry_mem copyback "Grid" Access.Read Access.Home);
  Alcotest.(check bool) "copyback home-only" true (Access.home_only copyback)

let test_access_alignment_requires_same_dist () =
  (* Same shape but different distribution: positional access cannot be
     proven local. *)
  let _, summaries =
    summaries_of
      {|
      aggregate A[8][8] dist rowblock;
      aggregate B[8][8] dist tiled(2, 2);
      parallel void f(parallel A a, B b) { a[#0][#1] = b[#0][#1]; }
      void main() { f(); }
      |}
  in
  let f = List.assoc "f" summaries in
  Alcotest.(check bool) "misaligned read is non-home" true
    (entry_mem f "B" Access.Read Access.Non_home)

let test_access_indirection () =
  let _, summaries =
    summaries_of
      {|
      aggregate A[8]; aggregate P[8];
      parallel void f(parallel A a, P p) { a[#0] = a[p[#0]]; }
      void main() { f(); }
      |}
  in
  let f = List.assoc "f" summaries in
  Alcotest.(check bool) "indirect read non-home" true
    (entry_mem f "A" Access.Read Access.Non_home);
  (* p[#0] is aligned with the parallel aggregate: Home read. *)
  Alcotest.(check bool) "index array read home" true (entry_mem f "P" Access.Read Access.Home)

let test_access_barnes () =
  let _, summaries = summaries_of barnes_skeleton_src in
  let mt = List.assoc "make_tree" summaries in
  Alcotest.(check bool) "make_tree unstructured write Tree" true
    (entry_mem mt "Tree" Access.Write Access.Non_home);
  Alcotest.(check bool) "make_tree home read Bodies" true
    (entry_mem mt "Bodies" Access.Read Access.Home);
  let com = List.assoc "center_of_mass" summaries in
  Alcotest.(check bool) "center_of_mass home only" true (Access.home_only com);
  let fo = List.assoc "forces" summaries in
  Alcotest.(check bool) "forces unstructured Tree" true (Access.has_unstructured fo "Tree");
  Alcotest.(check bool) "forces unstructured Bodies" true (Access.has_unstructured fo "Bodies");
  Alcotest.(check bool) "forces owner-writes Bodies" true (Access.has_owner_write fo "Bodies")

(* -- CFG ------------------------------------------------------------------- *)

let test_cfg_structure () =
  let c = compile_ok barnes_skeleton_src in
  let cfg = Cfg.build c.Compile.sema.Sema.prog.Ast.main in
  check
    Alcotest.(list (pair int string))
    "call sites in order"
    [ (0, "make_tree"); (1, "center_of_mass"); (2, "forces"); (3, "update") ]
    (Cfg.call_sites cfg);
  (* Every node except exit must have a successor; every node except entry a
     predecessor. *)
  Array.iteri
    (fun i succs ->
      if i <> cfg.Cfg.exit then
        Alcotest.(check bool) (Printf.sprintf "node %d has successor" i) true (succs <> []))
    cfg.Cfg.succs;
  Array.iteri
    (fun i preds ->
      if i <> cfg.Cfg.entry then
        Alcotest.(check bool) (Printf.sprintf "node %d has predecessor" i) true (preds <> []))
    cfg.Cfg.preds

let test_cfg_loop_backedge () =
  let c = compile_ok "aggregate A[4]; parallel void f(parallel A a) { a[#0] = 1; } void main() { let i = 0; while (i < 3) { f(); i = i + 1; } }" in
  let cfg = Cfg.build c.Compile.sema.Sema.prog.Ast.main in
  (* Find the branch node: it must have two successors (body and exit) and at
     least two predecessors (entry path and back edge). *)
  let branch =
    Array.to_list (Array.mapi (fun i k -> (i, k)) cfg.Cfg.kinds)
    |> List.find (fun (_, k) -> k = Cfg.Branch)
    |> fst
  in
  check Alcotest.int "branch successors" 2 (List.length cfg.Cfg.succs.(branch));
  Alcotest.(check bool) "branch has back edge" true (List.length cfg.Cfg.preds.(branch) >= 2)

(* -- dataflow / reaching ---------------------------------------------------- *)

let test_reaching_stencil () =
  let c = compile_ok stencil_src in
  let r = Reaching.analyze c.Compile.sema c.Compile.sema.Sema.prog.Ast.main in
  (* Site 0 = init: nothing reaches program entry. *)
  Alcotest.(check bool) "entry clean" false (Reaching.reaches r ~site:0 ~agg:"Old");
  (* Site 1 = smooth: copyback's owner writes at the end of the previous
     iteration invalidated all remote copies of Old, so nothing reaches the
     loop header — smooth needs its directive by rule 2, not rule 1. *)
  Alcotest.(check bool) "smooth not reached (killed by copyback)" false
    (Reaching.reaches r ~site:1 ~agg:"Old");
  (* Site 2 = copyback: smooth generated unstructured accesses on Old. *)
  Alcotest.(check bool) "copyback reached by Old" true (Reaching.reaches r ~site:2 ~agg:"Old");
  Alcotest.(check bool) "copyback not reached by Grid" false
    (Reaching.reaches r ~site:2 ~agg:"Grid")

let test_reaching_kill () =
  (* An owner write kills the property; with no loop the later home-writer is
     not reached. *)
  let src =
    {|
    aggregate A[8]; aggregate B[8];
    parallel void gather(parallel B b, A a) { b[#0] = a[b[#0]]; }
    parallel void rebuild(parallel A a) { a[#0] = 1; }
    parallel void refill(parallel A a) { a[#0] = 2; }
    void main() { gather(); rebuild(); refill(); }
    |}
  in
  let c = compile_ok src in
  let r = Reaching.analyze c.Compile.sema c.Compile.sema.Sema.prog.Ast.main in
  Alcotest.(check bool) "rebuild reached by A" true (Reaching.reaches r ~site:1 ~agg:"A");
  Alcotest.(check bool) "refill not reached (killed by rebuild)" false
    (Reaching.reaches r ~site:2 ~agg:"A")

let test_dataflow_fixpoint_terminates () =
  (* Nested loops with conflicting gen/kill must still converge. *)
  let src =
    {|
    aggregate A[8];
    parallel void scatter(parallel A a) { a[a[#0]] = 1; }
    parallel void own(parallel A a) { a[#0] = 0; }
    void main() {
      let i = 0;
      for (i = 0; i < 3; i = i + 1) {
        let j = 0;
        while (j < 2) {
          scatter();
          own();
          j = j + 1;
        }
        own();
      }
    }
    |}
  in
  let c = compile_ok src in
  let r = Reaching.analyze c.Compile.sema c.Compile.sema.Sema.prog.Ast.main in
  Alcotest.(check bool) "converged with finite work" true
    (Dataflow.iterations_of_last_solve () < 1000);
  (* own() inside the loop is reached via the back edge. *)
  Alcotest.(check bool) "inner own reached" true (Reaching.reaches r ~site:1 ~agg:"A")

(* -- placement (Figure 4) --------------------------------------------------- *)

let test_placement_barnes_figure4 () =
  let c = compile_ok barnes_skeleton_src in
  let p = c.Compile.placement in
  (* The paper: "The compiler inserts directives for 4 parallel phases". *)
  check Alcotest.int "four phases" 4 p.Placement.num_phases;
  let d site = List.nth p.Placement.decisions site in
  (* make_tree: unstructured accesses (rule 2). *)
  (match (d 0).Placement.reason with
  | Placement.Has_unstructured -> ()
  | _ -> Alcotest.fail "make_tree must need a directive by rule 2");
  Alcotest.(check bool) "make_tree not hoisted" false (d 0).Placement.hoisted;
  (* center_of_mass: rule 1, and its directive is hoisted out of the loop
     ("this optimization allowed a single directive for phase 3"). *)
  (match (d 1).Placement.reason with
  | Placement.Reached_owner_write "Tree" -> ()
  | _ -> Alcotest.fail "center_of_mass must need a directive by rule 1 on Tree");
  Alcotest.(check bool) "center_of_mass hoisted" true (d 1).Placement.hoisted;
  (* forces: rule 2. *)
  (match (d 2).Placement.reason with
  | Placement.Has_unstructured -> ()
  | _ -> Alcotest.fail "forces must need a directive by rule 2");
  (* update: rule 1 via Bodies. *)
  (match (d 3).Placement.reason with
  | Placement.Reached_owner_write "Bodies" -> ()
  | _ -> Alcotest.fail "update must need a directive by rule 1 on Bodies");
  (* All four calls have distinct phases. *)
  let phases = List.filter_map (fun d -> d.Placement.phase) p.Placement.decisions in
  check Alcotest.int "distinct phase per call" 4 (List.length (List.sort_uniq compare phases))

let test_placement_stencil () =
  let c = compile_ok stencil_src in
  let p = c.Compile.placement in
  check Alcotest.int "two phases" 2 p.Placement.num_phases;
  let d site = List.nth p.Placement.decisions site in
  (match (d 0).Placement.reason with
  | Placement.Not_needed -> ()
  | _ -> Alcotest.fail "init needs no directive");
  check Alcotest.bool "init has no phase" true ((d 0).Placement.phase = None);
  Alcotest.(check bool) "smooth phased" true ((d 1).Placement.phase <> None);
  Alcotest.(check bool) "copyback phased" true ((d 2).Placement.phase <> None)

let test_placement_coalesces_home_neighbours () =
  (* Two adjacent home-only calls that both need schedules must share one. *)
  let src =
    {|
    aggregate A[8];
    parallel void scatter(parallel A a) { a[a[#0]] = 1; }
    parallel void own1(parallel A a) { a[#0] = 1; }
    parallel void own2(parallel A a) { a[#0] = 2; }
    void main() {
      let i = 0;
      for (i = 0; i < 3; i = i + 1) {
        scatter();
        own1();
        own2();
      }
    }
    |}
  in
  let c = compile_ok src in
  let p = c.Compile.placement in
  let d site = List.nth p.Placement.decisions site in
  check Alcotest.int "two phases total" 2 p.Placement.num_phases;
  Alcotest.(check bool) "own1/own2 share a phase" true
    ((d 1).Placement.phase = (d 2).Placement.phase && (d 1).Placement.phase <> None)

let test_placement_no_directives_for_static_program () =
  (* A purely home-access program gets no directives at all. *)
  let src =
    {|
    aggregate A[8];
    parallel void own(parallel A a) { a[#0] = a[#0] + 1; }
    void main() { let i = 0; for (i = 0; i < 5; i = i + 1) { own(); } }
    |}
  in
  let c = compile_ok src in
  check Alcotest.int "no phases" 0 c.Compile.placement.Placement.num_phases

(* -- end-to-end execution --------------------------------------------------- *)

let run_stencil protocol =
  let rt =
    Runtime.create ~cfg:(Machine.default_config ~num_nodes:4 ~block_bytes:32 ()) ~protocol ()
  in
  let c = compile_ok stencil_src in
  let env = Interp.load rt c in
  Interp.run env;
  let grid = Interp.aggregate env "Grid" in
  let values = ref [] in
  for i = 0 to 7 do
    for j = 0 to 7 do
      values := Aggregate.peek2 grid i j ~field:0 :: !values
    done
  done;
  (rt, !values)

let test_interp_runs_and_is_deterministic () =
  let _, v1 = run_stencil Runtime.Stache in
  let _, v2 = run_stencil Runtime.Stache in
  Alcotest.(check (list (float 0.0))) "deterministic" v1 v2;
  Alcotest.(check bool) "values non-trivial" true (List.exists (fun v -> v <> 0.0) v1)

let test_interp_protocols_agree () =
  let _, v_stache = run_stencil Runtime.Stache in
  let _, v_pred = run_stencil Runtime.Predictive in
  Alcotest.(check (list (float 0.0))) "same values under predictive" v_stache v_pred

let test_interp_predictive_reduces_faults () =
  let rt_s, _ = run_stencil Runtime.Stache in
  let rt_p, _ = run_stencil Runtime.Predictive in
  let faults rt =
    let c = Machine.total_counters (Runtime.machine rt) in
    c.Machine.read_faults + c.Machine.write_faults
  in
  Alcotest.(check bool)
    (Printf.sprintf "predictive faults (%d) < stache faults (%d)" (faults rt_p) (faults rt_s))
    true
    (faults rt_p < faults rt_s)

let test_interp_bounds_error () =
  let rt =
    Runtime.create ~cfg:(Machine.default_config ~num_nodes:2 ~block_bytes:32 ()) ~protocol:Runtime.Stache ()
  in
  let src =
    "aggregate A[4]; parallel void f(parallel A a) { a[#0] = a[#0 + 1]; } void main() { f(); }"
  in
  let env = Interp.load rt (compile_ok src) in
  Alcotest.(check bool) "out of bounds raises" true
    (try
       Interp.run env;
       false
     with Invalid_argument _ | Interp.Runtime_error _ -> true)

let test_interp_barnes_skeleton_runs () =
  let rt =
    Runtime.create ~cfg:(Machine.default_config ~num_nodes:4 ~block_bytes:32 ()) ~protocol:Runtime.Predictive ()
  in
  let c = compile_ok barnes_skeleton_src in
  let env = Interp.load rt c in
  Interp.run env;
  Alcotest.(check bool) "time advanced" true (Runtime.total_time rt > 0.0)

let test_interp_intrinsics () =
  let rt =
    Runtime.create ~cfg:(Machine.default_config ~num_nodes:2 ~block_bytes:32 ()) ~protocol:Runtime.Stache ()
  in
  let src =
    {|
    aggregate A[6];
    parallel void f(parallel A a) {
      a[#0] = sqrt(16) + abs(0 - 2) + min(9, 3) + max(1, 4) + floor(2.9);
    }
    void main() { f(); }
    |}
  in
  let env = Interp.load rt (compile_ok src) in
  Interp.run env;
  let a = Interp.aggregate env "A" in
  check (Alcotest.float 1e-9) "intrinsic arithmetic" 15.0 (Aggregate.peek1 a 0 ~field:0)

let suite =
  [
    ( "cstar.lexer",
      [
        Alcotest.test_case "basics" `Quick test_lexer_basics;
        Alcotest.test_case "operators" `Quick test_lexer_operators;
        Alcotest.test_case "errors" `Quick test_lexer_errors;
        Alcotest.test_case "positions" `Quick test_lexer_positions;
      ] );
    ( "cstar.parser",
      [
        Alcotest.test_case "precedence" `Quick test_parser_precedence;
        Alcotest.test_case "unary/assoc" `Quick test_parser_unary_and_assoc;
        Alcotest.test_case "roundtrip through printer" `Quick test_parser_program_roundtrip;
        Alcotest.test_case "errors" `Quick test_parser_errors;
      ] );
    ( "cstar.sema",
      [
        Alcotest.test_case "errors" `Quick test_sema_errors;
        Alcotest.test_case "alias resolution" `Quick test_sema_alias_resolution;
      ] );
    ( "cstar.access",
      [
        Alcotest.test_case "stencil summaries" `Quick test_access_stencil;
        Alcotest.test_case "alignment needs same dist" `Quick
          test_access_alignment_requires_same_dist;
        Alcotest.test_case "indirection" `Quick test_access_indirection;
        Alcotest.test_case "barnes summaries" `Quick test_access_barnes;
      ] );
    ( "cstar.cfg",
      [
        Alcotest.test_case "structure" `Quick test_cfg_structure;
        Alcotest.test_case "loop back edge" `Quick test_cfg_loop_backedge;
      ] );
    ( "cstar.reaching",
      [
        Alcotest.test_case "stencil facts" `Quick test_reaching_stencil;
        Alcotest.test_case "owner write kills" `Quick test_reaching_kill;
        Alcotest.test_case "fixpoint terminates" `Quick test_dataflow_fixpoint_terminates;
      ] );
    ( "cstar.placement",
      [
        Alcotest.test_case "barnes = paper figure 4" `Quick test_placement_barnes_figure4;
        Alcotest.test_case "stencil" `Quick test_placement_stencil;
        Alcotest.test_case "coalesces home neighbours" `Quick
          test_placement_coalesces_home_neighbours;
        Alcotest.test_case "static program: no directives" `Quick
          test_placement_no_directives_for_static_program;
      ] );
    ( "cstar.interp",
      [
        Alcotest.test_case "deterministic execution" `Quick test_interp_runs_and_is_deterministic;
        Alcotest.test_case "protocols agree on values" `Quick test_interp_protocols_agree;
        Alcotest.test_case "predictive reduces faults" `Quick test_interp_predictive_reduces_faults;
        Alcotest.test_case "bounds error" `Quick test_interp_bounds_error;
        Alcotest.test_case "barnes skeleton runs" `Quick test_interp_barnes_skeleton_runs;
        Alcotest.test_case "intrinsics" `Quick test_interp_intrinsics;
      ] );
  ]
