(* Application-level tests: each benchmark must compute exactly the same
   physics on the simulated DSM (under every protocol) as its sequential
   reference, and the predictive protocol must actually cut demand faults on
   the repetitive phases. *)

module Machine = Ccdsm_tempest.Machine
module Runtime = Ccdsm_runtime.Runtime
module Adaptive = Ccdsm_apps.Adaptive
module Barnes = Ccdsm_apps.Barnes
module Barnes_spmd = Ccdsm_apps.Barnes_spmd
module Water = Ccdsm_apps.Water
module Irregular = Ccdsm_apps.Irregular

let check = Alcotest.check

let rt ?(num_nodes = 8) ?(block_bytes = 32) protocol =
  Runtime.create ~cfg:(Machine.default_config ~num_nodes ~block_bytes ()) ~protocol ()

let total_faults rt =
  let c = Machine.total_counters (Runtime.machine rt) in
  c.Machine.read_faults + c.Machine.write_faults

(* -- Adaptive ---------------------------------------------------------------- *)

let test_adaptive_matches_reference () =
  let cfg = Adaptive.small in
  let expected = Adaptive.reference cfg in
  List.iter
    (fun proto ->
      let r = rt proto in
      let got = Adaptive.run r cfg in
      check (Alcotest.float 0.0)
        (Printf.sprintf "checksum (%s)" (Runtime.coherence r).Ccdsm_proto.Coherence.name)
        expected.Adaptive.checksum got.Adaptive.checksum;
      check Alcotest.int "refined cells" expected.Adaptive.refined_cells got.Adaptive.refined_cells)
    [ Runtime.Stache; Runtime.Predictive ]

let test_adaptive_refines () =
  let s = Adaptive.reference Adaptive.small in
  Alcotest.(check bool) "some cells refined" true (s.Adaptive.refined_cells > 0);
  Alcotest.(check bool) "not everything refined" true
    (s.Adaptive.refined_cells < Adaptive.small.Adaptive.n * Adaptive.small.Adaptive.n / 4)

let test_adaptive_predictive_cuts_faults () =
  let r_s = rt Runtime.Stache and r_p = rt Runtime.Predictive in
  ignore (Adaptive.run r_s Adaptive.small);
  ignore (Adaptive.run r_p Adaptive.small);
  Alcotest.(check bool)
    (Printf.sprintf "predictive %d < stache %d" (total_faults r_p) (total_faults r_s))
    true
    (total_faults r_p < total_faults r_s)

let test_adaptive_remote_wait_drops () =
  let wait r =
    List.assoc Machine.Remote_wait (Runtime.time_breakdown r)
  in
  let r_s = rt Runtime.Stache and r_p = rt Runtime.Predictive in
  ignore (Adaptive.run r_s Adaptive.small);
  ignore (Adaptive.run r_p Adaptive.small);
  Alcotest.(check bool) "remote wait reduced" true (wait r_p < wait r_s)

let test_adaptive_skeleton_placement () =
  (* The compiler must schedule all three phases of the skeleton. *)
  let c = Ccdsm_cstar.Compile.compile_exn Adaptive.skeleton_src in
  let p = c.Ccdsm_cstar.Compile.placement in
  Alcotest.(check bool) "all calls phased" true
    (List.for_all
       (fun d -> d.Ccdsm_cstar.Placement.phase <> None)
       p.Ccdsm_cstar.Placement.decisions)

(* -- Barnes ------------------------------------------------------------------ *)

let test_barnes_matches_reference () =
  let cfg = Barnes.small in
  let expected = Barnes.reference cfg in
  List.iter
    (fun proto ->
      let r = rt proto in
      let got = Barnes.run r cfg in
      check (Alcotest.float 0.0) "checksum" expected.Barnes.checksum got.Barnes.checksum;
      check Alcotest.int "tree nodes" expected.Barnes.tree_nodes got.Barnes.tree_nodes;
      check Alcotest.int "max depth" expected.Barnes.max_depth got.Barnes.max_depth)
    [ Runtime.Stache; Runtime.Predictive ]

let test_barnes_tree_shape () =
  let s = Barnes.reference Barnes.small in
  Alcotest.(check bool) "enough nodes for all bodies" true
    (s.Barnes.tree_nodes > Barnes.small.Barnes.n_bodies);
  Alcotest.(check bool) "depth sane" true (s.Barnes.max_depth >= 3 && s.Barnes.max_depth < 40)

let test_barnes_predictive_cuts_faults () =
  let cfg = { Barnes.small with Barnes.iterations = 3 } in
  let r_s = rt Runtime.Stache and r_p = rt Runtime.Predictive in
  ignore (Barnes.run r_s cfg);
  ignore (Barnes.run r_p cfg);
  Alcotest.(check bool)
    (Printf.sprintf "predictive %d < stache %d" (total_faults r_p) (total_faults r_s))
    true
    (total_faults r_p < total_faults r_s)

let test_barnes_deterministic () =
  let a = Barnes.reference Barnes.small and b = Barnes.reference Barnes.small in
  check (Alcotest.float 0.0) "reference deterministic" a.Barnes.checksum b.Barnes.checksum

let test_barnes_spmd_baseline () =
  let cfg = Barnes.small in
  let expected = Barnes.reference cfg in
  let r = rt Runtime.Write_update in
  let got = Barnes_spmd.run r cfg in
  check (Alcotest.float 0.0) "spmd checksum matches" expected.Barnes.checksum
    got.Barnes.checksum;
  (* The write-update protocol must actually have pushed updates. *)
  let stats = (Runtime.coherence r).Ccdsm_proto.Coherence.stats () in
  Alcotest.(check bool) "updates pushed" true (List.assoc "update_msgs" stats > 0.0);
  (* And refuse to run under the wrong protocol. *)
  Alcotest.(check bool) "protocol check" true
    (try
       ignore (Barnes_spmd.run (rt Runtime.Stache) cfg);
       false
     with Invalid_argument _ -> true)

(* -- Water ------------------------------------------------------------------- *)

let test_water_matches_reference () =
  let cfg = Water.small in
  let expected = Water.reference ~nodes:8 cfg in
  List.iter
    (fun proto ->
      let r = rt proto in
      let got = Water.run r cfg in
      check (Alcotest.float 0.0) "checksum" expected.Water.checksum got.Water.checksum;
      check Alcotest.int "interactions" expected.Water.interactions got.Water.interactions)
    [ Runtime.Stache; Runtime.Predictive ]

let test_water_splash_matches_reference () =
  let cfg = Water.small in
  let expected = Water.reference_splash ~nodes:8 cfg in
  let r = rt Runtime.Stache in
  let got = Water.run_splash r cfg in
  check (Alcotest.float 0.0) "checksum" expected.Water.checksum got.Water.checksum

let test_water_variants_agree_physically () =
  (* Same physics, different accumulation order (reduction rows vs in-place):
     checksums agree to float tolerance and pair counts exactly. *)
  let cfg = Water.small in
  let a = Water.reference cfg and b = Water.reference_splash cfg in
  Alcotest.(check bool)
    (Printf.sprintf "checksums close (%g vs %g)" a.Water.checksum b.Water.checksum)
    true
    (Float.abs (a.Water.checksum -. b.Water.checksum)
    < 1e-9 *. Float.max 1.0 (Float.abs a.Water.checksum));
  check Alcotest.int "same pair computations" a.Water.interactions b.Water.interactions

let test_water_predictive_cuts_faults () =
  let r_s = rt Runtime.Stache and r_p = rt Runtime.Predictive in
  ignore (Water.run r_s Water.small);
  ignore (Water.run r_p Water.small);
  Alcotest.(check bool)
    (Printf.sprintf "predictive %d < stache %d" (total_faults r_p) (total_faults r_s))
    true
    (total_faults r_p < total_faults r_s)

let test_water_skeleton_placement () =
  let c = Ccdsm_cstar.Compile.compile_exn Water.skeleton_src in
  let p = c.Ccdsm_cstar.Compile.placement in
  let by_func f =
    List.find (fun d -> d.Ccdsm_cstar.Placement.func = f) p.Ccdsm_cstar.Placement.decisions
  in
  (* The interaction and combine phases carry rule-2 directives; predict and
     zero_partials are owner-write phases reached by unstructured accesses
     (rule 1); correct touches only data never cached remotely. *)
  Alcotest.(check bool) "interf phased" true ((by_func "interf").Ccdsm_cstar.Placement.phase <> None);
  (match (by_func "interf").Ccdsm_cstar.Placement.reason with
  | Ccdsm_cstar.Placement.Has_unstructured -> ()
  | _ -> Alcotest.fail "interf must need a directive by rule 2");
  (match (by_func "combine").Ccdsm_cstar.Placement.reason with
  | Ccdsm_cstar.Placement.Has_unstructured -> ()
  | _ -> Alcotest.fail "combine must need a directive by rule 2");
  (match (by_func "predict").Ccdsm_cstar.Placement.reason with
  | Ccdsm_cstar.Placement.Reached_owner_write "Pos" -> ()
  | _ -> Alcotest.fail "predict must need a directive by rule 1 on Pos");
  (match (by_func "zero_partials").Ccdsm_cstar.Placement.reason with
  | Ccdsm_cstar.Placement.Reached_owner_write "Partial" -> ()
  | _ -> Alcotest.fail "zero_partials must need a directive by rule 1 on Partial");
  Alcotest.(check bool) "correct unphased" true
    ((by_func "correct").Ccdsm_cstar.Placement.phase = None)

(* -- Irregular (inspector-executor comparison kernel) ------------------------ *)

let test_irregular_strategies_agree () =
  let cfg = Irregular.small in
  let expected = Irregular.reference cfg in
  let dsm proto flush =
    let r = rt proto in
    Irregular.run_dsm ~flush_on_change:flush r cfg
  in
  let a = dsm Runtime.Stache false in
  let b = dsm Runtime.Predictive false in
  let c = dsm Runtime.Predictive true in
  let d = Irregular.run_inspector (rt Runtime.Stache) cfg in
  List.iter
    (fun (name, s) ->
      check (Alcotest.float 0.0) (name ^ " checksum") expected.Irregular.checksum
        s.Irregular.checksum;
      check Alcotest.int (name ^ " changes") expected.Irregular.pattern_changes
        s.Irregular.pattern_changes)
    [ ("stache", a); ("predictive", b); ("pred+flush", c); ("inspector", d) ]

let test_irregular_predictive_beats_stache () =
  let cfg = Irregular.small in
  let time proto =
    let r = rt proto in
    ignore (Irregular.run_dsm r cfg);
    Runtime.total_time r
  in
  Alcotest.(check bool) "predictive faster" true (time Runtime.Predictive < time Runtime.Stache)

let test_irregular_static_pattern_no_changes () =
  let cfg = { Irregular.small with Irregular.change_every = 0 } in
  let s = Irregular.reference cfg in
  check Alcotest.int "no changes when static" 0 s.Irregular.pattern_changes

let test_irregular_inspector_counts_messages () =
  let cfg = Irregular.small in
  let r = rt Runtime.Stache in
  ignore (Irregular.run_inspector r cfg);
  let c = Machine.total_counters (Runtime.machine r) in
  Alcotest.(check bool) "gathers sent" true (c.Machine.msgs > 0);
  check Alcotest.int "no coherence faults" 0 (c.Machine.read_faults + c.Machine.write_faults)

let suite =
  [
    ( "apps.adaptive",
      [
        Alcotest.test_case "matches reference" `Quick test_adaptive_matches_reference;
        Alcotest.test_case "refinement happens" `Quick test_adaptive_refines;
        Alcotest.test_case "predictive cuts faults" `Quick test_adaptive_predictive_cuts_faults;
        Alcotest.test_case "remote wait drops" `Quick test_adaptive_remote_wait_drops;
        Alcotest.test_case "skeleton placement" `Quick test_adaptive_skeleton_placement;
      ] );
    ( "apps.barnes",
      [
        Alcotest.test_case "matches reference" `Quick test_barnes_matches_reference;
        Alcotest.test_case "tree shape" `Quick test_barnes_tree_shape;
        Alcotest.test_case "predictive cuts faults" `Quick test_barnes_predictive_cuts_faults;
        Alcotest.test_case "deterministic" `Quick test_barnes_deterministic;
        Alcotest.test_case "spmd write-update baseline" `Quick test_barnes_spmd_baseline;
      ] );
    ( "apps.water",
      [
        Alcotest.test_case "matches reference" `Quick test_water_matches_reference;
        Alcotest.test_case "splash matches reference" `Quick test_water_splash_matches_reference;
        Alcotest.test_case "variants agree physically" `Quick test_water_variants_agree_physically;
        Alcotest.test_case "predictive cuts faults" `Quick test_water_predictive_cuts_faults;
        Alcotest.test_case "skeleton placement" `Quick
          test_water_skeleton_placement;
      ] );
    ( "apps.irregular",
      [
        Alcotest.test_case "strategies agree" `Quick test_irregular_strategies_agree;
        Alcotest.test_case "predictive beats stache" `Quick
          test_irregular_predictive_beats_stache;
        Alcotest.test_case "static pattern" `Quick test_irregular_static_pattern_no_changes;
        Alcotest.test_case "inspector messaging" `Quick test_irregular_inspector_counts_messages;
      ] );
  ]
