(* Benchmark harness.

   Running this executable regenerates every table and figure of the paper
   (printed below, at the data-set scale selected by CCDSM_FULL), then times
   the regeneration machinery and the protocol hot paths with Bechamel —
   one Test.make per table/figure plus micro-benchmarks.

   dune exec bench/main.exe           # print figures + Bechamel table
   dune exec bench/main.exe -- --json [FILE]
                                      # also write the machine-readable
                                      # baseline (default FILE: BENCH.json) *)

open Bechamel
open Toolkit
module E = Ccdsm_harness.Experiments
module Measure_h = Ccdsm_harness.Measure
module Machine = Ccdsm_tempest.Machine
module Runtime = Ccdsm_runtime.Runtime
module Aggregate = Ccdsm_runtime.Aggregate
module Distribution = Ccdsm_runtime.Distribution
module Schedule = Ccdsm_core.Schedule
module Predictive = Ccdsm_core.Predictive
module Parjobs = Ccdsm_harness.Parjobs
module Adaptive = Ccdsm_apps.Adaptive
module Barnes = Ccdsm_apps.Barnes
module Water = Ccdsm_apps.Water
module Cstar = Ccdsm_cstar

(* -- regenerate the paper's tables and figures ------------------------------- *)

let print_figures () =
  let scale = E.scale_of_env () in
  print_endline "==================================================================";
  print_endline "Reproduction of every table and figure (see EXPERIMENTS.md)";
  (match scale with
  | E.Paper -> print_endline "scale: paper data sets (CCDSM_FULL set)"
  | E.Scaled -> print_endline "scale: reduced data sets (set CCDSM_FULL=1 for paper scale)");
  print_endline "==================================================================";
  print_endline "\n== Table 1 ==";
  print_string (E.table1 scale);
  print_endline "\n== Figure 4 ==";
  print_string (E.fig4 ());
  let fig5 = E.fig5 scale in
  print_newline ();
  print_string (E.render fig5);
  let fig6 = E.fig6 scale in
  print_newline ();
  print_string (E.render fig6);
  let fig7 = E.fig7 scale in
  print_newline ();
  print_string (E.render fig7);
  print_newline ();
  print_string (E.block_sweep scale);
  print_newline ();
  print_string (E.ablations scale);
  print_newline ();
  print_string (E.inspector scale);
  print_newline ();
  print_string (E.scaling scale);
  print_endline "\n== shape checks (paper claims) ==";
  let checks = E.check_shapes ~fig5 ~fig6 ~fig7 in
  List.iter
    (fun (claim, ok) -> Printf.printf "  [%s] %s\n" (if ok then "ok" else "MISS") claim)
    checks;
  print_newline ()

(* -- Bechamel tests ------------------------------------------------------------ *)

(* Tiny configurations so each timed sample stays in the milliseconds. *)
let tiny_adaptive = { Adaptive.small with Adaptive.n = 32; iterations = 4 }
let tiny_barnes = { Barnes.small with Barnes.n_bodies = 512; iterations = 1 }
let tiny_water = { Water.small with Water.n_molecules = 64; iterations = 2 }

let small_machine () = Machine.default_config ~num_nodes:8 ~block_bytes:32 ()

let bench_version protocol run =
  Measure_h.measure ~num_nodes:8 (Measure_h.version ~label:"bench" ~protocol ~block_bytes:32 run)

let test_table1 =
  Test.make ~name:"table1" (Staged.stage (fun () -> Sys.opaque_identity (E.table1 E.Scaled)))

let test_fig4 =
  Test.make ~name:"fig4-compiler-report" (Staged.stage (fun () -> Sys.opaque_identity (E.fig4 ())))

let test_fig5 =
  Test.make ~name:"fig5-adaptive"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (bench_version Runtime.Predictive (fun rt ->
                (Adaptive.run rt tiny_adaptive).Adaptive.checksum))))

let test_fig6 =
  Test.make ~name:"fig6-barnes"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (bench_version Runtime.Predictive (fun rt ->
                (Barnes.run rt tiny_barnes).Barnes.checksum))))

let test_fig7 =
  Test.make ~name:"fig7-water"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (bench_version Runtime.Predictive (fun rt ->
                (Water.run rt tiny_water).Water.checksum))))

let test_sweep_point =
  Test.make ~name:"sweep-point-unopt"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (bench_version Runtime.Stache (fun rt ->
                (Water.run rt tiny_water).Water.checksum))))

let test_ablation_point =
  Test.make ~name:"ablation-no-coalesce"
    (Staged.stage (fun () ->
         let v =
           Measure_h.version ~label:"bench" ~protocol:Runtime.Predictive ~block_bytes:32
             ~coalesce:false (fun rt -> (Water.run rt tiny_water).Water.checksum)
         in
         Sys.opaque_identity (Measure_h.measure ~num_nodes:8 v)))

(* Micro-benchmarks of the protocol and compiler hot paths. *)

let test_demand_miss =
  Test.make ~name:"micro-stache-demand-miss"
    (Staged.stage
       (let m = Machine.create (small_machine ()) in
        let _ = Ccdsm_proto.Engine.stache m in
        let a = Machine.alloc m ~words:4 ~home:0 in
        let turn = ref 0 in
        fun () ->
          (* Alternate writer/readers so every access faults. *)
          turn := (!turn + 1) land 3;
          if !turn = 0 then Machine.write m ~node:1 a 1.0
          else ignore (Sys.opaque_identity (Machine.read m ~node:(2 + (!turn land 1)) a))))

let test_local_hit =
  Test.make ~name:"micro-local-hit"
    (Staged.stage
       (let m = Machine.create (small_machine ()) in
        let _ = Ccdsm_proto.Engine.stache m in
        let a = Machine.alloc m ~words:4 ~home:0 in
        fun () -> ignore (Sys.opaque_identity (Machine.read m ~node:0 a))))

let test_schedule_record =
  Test.make ~name:"micro-schedule-record"
    (Staged.stage
       (let s = Schedule.create () in
        let i = ref 0 in
        fun () ->
          incr i;
          Schedule.record_read s (!i land 1023) ~reader:(!i land 7)))

let test_presend =
  Test.make ~name:"micro-presend-1k-blocks"
    (Staged.stage
       (let m = Machine.create (small_machine ()) in
        let p = Predictive.create m in
        let coh = Predictive.coherence p in
        let a = Machine.alloc m ~words:4096 ~home:0 in
        (* Build a 1024-block schedule once. *)
        coh.Ccdsm_proto.Coherence.phase_begin ~phase:0;
        for b = 0 to 1023 do
          ignore (Machine.read m ~node:1 (a + (b * 4)))
        done;
        coh.Ccdsm_proto.Coherence.phase_end ~phase:0;
        fun () ->
          coh.Ccdsm_proto.Coherence.phase_begin ~phase:0;
          coh.Ccdsm_proto.Coherence.phase_end ~phase:0))

let test_dataflow =
  Test.make ~name:"micro-dataflow-solve"
    (Staged.stage
       (let c = Cstar.Compile.compile_exn Ccdsm_apps.Water.skeleton_src in
        let sema = c.Cstar.Compile.sema in
        fun () ->
          Sys.opaque_identity
            (Cstar.Reaching.analyze sema sema.Cstar.Sema.prog.Cstar.Ast.main)))

let test_compile =
  Test.make ~name:"micro-compile-adaptive-skeleton"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Cstar.Compile.compile_exn Ccdsm_apps.Adaptive.skeleton_src)))

let test_bulk_runs =
  Test.make ~name:"micro-bulk-runs"
    (Staged.stage
       (let blocks = List.init 256 (fun i -> (i * 7) mod 512) in
        fun () -> Sys.opaque_identity (Ccdsm_proto.Bulk.runs blocks)))

let test_aggregate_addr =
  Test.make ~name:"micro-aggregate-addr"
    (Staged.stage
       (let m = Machine.create (small_machine ()) in
        let agg =
          Aggregate.create_2d m ~name:"bench" ~elem_words:4 ~rows:64 ~cols:64
            ~dist:Distribution.Row_block ()
        in
        let i = ref 0 in
        fun () ->
          incr i;
          let r = !i land 63 and c = (!i * 7) land 63 in
          ignore (Sys.opaque_identity (Aggregate.addr2 agg r c ~field:(!i land 3)))))

let test_read_range =
  Test.make ~name:"micro-read-range-block"
    (Staged.stage
       (let m = Machine.create (small_machine ()) in
        let _ = Ccdsm_proto.Engine.stache m in
        let a = Machine.alloc m ~words:4096 ~home:0 in
        let buf = Array.make 8 0.0 in
        let i = ref 0 in
        fun () ->
          (* Home-node reads: the steady-state (no-fault) batched path. *)
          incr i;
          Machine.read_range m ~node:0 (a + (!i land 511) * 8) buf;
          ignore (Sys.opaque_identity buf.(0))))

let test_flat_tag_lookup =
  Test.make ~name:"micro-flat-tag-lookup"
    (Staged.stage
       (* Tag reads out of the flat (node x block) Bigarray at the full
          1024-node machine size — the hot load of every coherence check. *)
       (let m = Machine.create (Machine.default_config ~num_nodes:1024 ~block_bytes:32 ()) in
        let a = Machine.alloc m ~words:4096 ~home:0 in
        let b0 = a / Machine.words_per_block m in
        let i = ref 0 in
        fun () ->
          incr i;
          ignore
            (Sys.opaque_identity
               (Machine.tag m ~node:(!i land 1023) (b0 + (!i land 1023))))))

let test_sharded_directory_hit =
  Test.make ~name:"micro-sharded-directory-hit"
    (Staged.stage
       (* Directory lookups with 1024 blocks spread across all 64 homes, so
          hits land in every shard of the sharded directory. *)
       (let m = Machine.create (Machine.default_config ~num_nodes:64 ~block_bytes:32 ()) in
        let wpb = Machine.words_per_block m in
        let blocks =
          Array.init 64 (fun h -> Machine.alloc m ~words:(16 * wpb) ~home:h / wpb)
          |> Array.to_list
          |> List.concat_map (fun b0 -> List.init 16 (fun k -> b0 + k))
          |> Array.of_list
        in
        let dir = Ccdsm_proto.Directory.create m in
        Array.iter
          (fun b -> Ccdsm_proto.Directory.set dir b (Ccdsm_proto.Directory.Exclusive (Machine.home_of_block m b)))
          blocks;
        let i = ref 0 in
        fun () ->
          incr i;
          ignore (Sys.opaque_identity (Ccdsm_proto.Directory.get dir blocks.(!i land 1023)))))

let test_phase_step_1024 =
  Test.make ~name:"micro-phase-step-1024-nodes"
    (Staged.stage
       (* One full presend phase step on a 1024-node machine: 1024 scheduled
          blocks, readers spread over the node range. *)
       (let m = Machine.create (Machine.default_config ~num_nodes:1024 ~block_bytes:32 ()) in
        let p = Predictive.create m in
        let coh = Predictive.coherence p in
        let a = Machine.alloc m ~words:4096 ~home:0 in
        coh.Ccdsm_proto.Coherence.phase_begin ~phase:0;
        for b = 0 to 1023 do
          ignore (Machine.read m ~node:((b * 7) land 1023) (a + (b * 4)))
        done;
        coh.Ccdsm_proto.Coherence.phase_end ~phase:0;
        fun () ->
          coh.Ccdsm_proto.Coherence.phase_begin ~phase:0;
          coh.Ccdsm_proto.Coherence.phase_end ~phase:0))

let test_presend_cached_sort =
  Test.make ~name:"micro-presend-cached-sort"
    (Staged.stage
       (let s = Schedule.create () in
        (* Record 1024 keys once, then iterate: after the first call the
           sorted key array is served from the cache. *)
        for b = 0 to 1023 do
          Schedule.record_read s ((b * 17) land 1023) ~reader:(b land 7)
        done;
        let acc = ref 0 in
        fun () ->
          acc := 0;
          Schedule.iter_sorted s (fun b _ -> acc := !acc + b);
          ignore (Sys.opaque_identity !acc)))

let test_rdist_record =
  Test.make ~name:"micro-rdist-record"
    (Staged.stage
       (* One stack-distance update on a warm 512-key tree: the per-access
          cost of the reuse-distance collector's Fenwick structure. *)
       (let sd = Ccdsm_rdist.Stack_dist.create () in
        for k = 0 to 511 do
          ignore (Ccdsm_rdist.Stack_dist.access sd k)
        done;
        let i = ref 0 in
        fun () ->
          i := (!i * 7) + 13;
          ignore (Sys.opaque_identity (Ccdsm_rdist.Stack_dist.access sd (!i land 511)))))

(* Machine read with and without a collector attached: the profiled-flag
   overhead row (the off cost must stay at the micro-local-hit level). *)
let profiled_read_pair () =
  let mk profiled =
    let m = Machine.create (small_machine ()) in
    let _ = Ccdsm_proto.Engine.stache m in
    let a = Machine.alloc m ~words:512 ~home:0 in
    if profiled then
      ignore
        (Ccdsm_rdist.Profile.attach ~app:"bench" ~protocol:"stache" ~arena_blocks:64 m);
    let i = ref 0 in
    fun () ->
      incr i;
      ignore (Sys.opaque_identity (Machine.read m ~node:0 (a + (!i land 511))))
  in
  ( Test.make ~name:"micro-read-unprofiled" (Staged.stage (mk false)),
    Test.make ~name:"micro-read-profiled" (Staged.stage (mk true)) )

let test_read_unprofiled, test_read_profiled = profiled_read_pair ()

(* The same off/on pair for the timeline collector: with no sink installed a
   machine read must cost the micro-local-hit level (the immediate-flag hot
   path), and the recorded row prices what a collector-attached read pays
   (trace emission + charge-hook accounting). *)
let timeline_read_pair () =
  let mk timed =
    let m = Machine.create (small_machine ()) in
    let _ = Ccdsm_proto.Engine.stache m in
    let a = Machine.alloc m ~words:512 ~home:0 in
    if timed then ignore (Ccdsm_tempest.Timecap.attach m);
    let i = ref 0 in
    fun () ->
      incr i;
      ignore (Sys.opaque_identity (Machine.read m ~node:0 (a + (!i land 511))))
  in
  ( Test.make ~name:"micro-read-untimed" (Staged.stage (mk false)),
    Test.make ~name:"micro-timeline-record" (Staged.stage (mk true)) )

let test_read_untimed, test_timeline_record = timeline_read_pair ()

let test_predict_point =
  Test.make ~name:"micro-predict-point"
    (Staged.stage
       (* One analytical-model evaluation (a full replay at a fresh block
          size) on the jacobi validation profile — the serve predict warm
          path before grid precomputation. *)
       (let app =
          List.find
            (fun a -> a.Ccdsm_harness.Predict_check.app_name = "jacobi")
            (Ccdsm_harness.Predict_check.apps ())
        in
        let profile =
          Ccdsm_harness.Predict_check.collect_profile app ~block_bytes:32
            ~protocol:Ccdsm_rdist.Model.Stache
        in
        let pr =
          match
            Ccdsm_rdist.Model.prepare profile ~net:Ccdsm_tempest.Network.default
              ~protocol:Ccdsm_rdist.Model.Stache
          with
          | Ok pr -> pr
          | Error msg -> failwith msg
        in
        let blocks = [| 64; 128; 256 |] in
        let i = ref 0 in
        fun () ->
          incr i;
          ignore
            (Sys.opaque_identity
               (Ccdsm_rdist.Model.eval pr ~block_bytes:blocks.(!i mod 3)))))

let tests =
  Test.make_grouped ~name:"ccdsm"
    [
      test_table1;
      test_fig4;
      test_fig5;
      test_fig6;
      test_fig7;
      test_sweep_point;
      test_ablation_point;
      test_demand_miss;
      test_local_hit;
      test_schedule_record;
      test_presend;
      test_dataflow;
      test_compile;
      test_bulk_runs;
      test_aggregate_addr;
      test_read_range;
      test_flat_tag_lookup;
      test_sharded_directory_hit;
      test_phase_step_1024;
      test_presend_cached_sort;
      test_rdist_record;
      test_read_unprofiled;
      test_read_profiled;
      test_read_untimed;
      test_timeline_record;
      test_predict_point;
    ]

(* Returns [(name, ns_per_run)] sorted by name; [None] when Bechamel could
   not produce an estimate. *)
let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.sort compare rows
  |> List.map (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ est ] -> (name, Some est)
         | _ -> (name, None))

let print_benchmarks rows =
  print_endline "== Bechamel timings (host time per regeneration/operation) ==";
  List.iter
    (fun (name, est) ->
      match est with
      | Some est ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
            else Printf.sprintf "%8.2f ns" est
          in
          Printf.printf "  %-36s %s/run\n" name pretty
      | None -> Printf.printf "  %-36s (no estimate)\n" name)
    rows

(* -- machine-readable baseline (--json) -------------------------------------- *)

(* Wall-clock per experiment driver, run through the multicore fan-out at the
   default job count (CCDSM_JOBS or the available cores).  Shared with
   [repro bench --compare], which checks a run against the baseline this
   writes; the Bechamel rows above are per-operation micro costs. *)
let wall_measurements = Ccdsm_harness.Bench_compare.wall_measurements

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path ~scale ~jobs ~wall ~micro =
  let oc = open_out path in
  let field last (name, v) =
    Printf.fprintf oc "    \"%s\": %.3f%s\n" (json_escape name) v (if last then "" else ",")
  in
  let obj entries =
    let n = List.length entries in
    List.iteri (fun i e -> field (i = n - 1) e) entries
  in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"ccdsm-bench-1\",\n";
  Printf.fprintf oc "  \"scale\": \"%s\",\n"
    (match scale with E.Paper -> "paper" | E.Scaled -> "scaled");
  Printf.fprintf oc "  \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "  \"wall_ms\": {\n";
  obj wall;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"micro_ns_per_op\": {\n";
  obj (List.filter_map (fun (n, e) -> Option.map (fun v -> (n, v)) e) micro);
  Printf.fprintf oc "  }\n";
  Printf.fprintf oc "}\n";
  close_out oc

let json_mode () =
  (* "--json" or "--json FILE" anywhere on the command line. *)
  let argv = Array.to_list Sys.argv in
  let rec scan = function
    | [] -> None
    | "--json" :: path :: _ when String.length path > 0 && path.[0] <> '-' -> Some path
    | "--json" :: _ -> Some "BENCH.json"
    | _ :: rest -> scan rest
  in
  scan argv

let () =
  (try ignore (Parjobs.env_jobs ())
   with Invalid_argument msg ->
     Printf.eprintf "bench: %s\n" msg;
     exit 2);
  match json_mode () with
  | None ->
      print_figures ();
      print_benchmarks (run_benchmarks ())
  | Some path ->
      let scale = E.scale_of_env () in
      let jobs = Parjobs.default_jobs () in
      Printf.printf "bench: measuring wall time per figure (scale=%s, jobs=%d)...\n%!"
        (match scale with E.Paper -> "paper" | E.Scaled -> "scaled")
        jobs;
      let wall = wall_measurements scale jobs in
      Printf.printf "bench: running Bechamel micro-benchmarks...\n%!";
      let micro = run_benchmarks () in
      write_json path ~scale ~jobs ~wall ~micro;
      List.iter (fun (name, ms) -> Printf.printf "  wall %-14s %8.1f ms\n" name ms) wall;
      print_benchmarks micro;
      Printf.printf "bench: wrote %s\n" path
